// Streaming message aggregation (TRAM-style): fine-grained messages
// bound for the same destination PE coalesce in a per-endpoint buffer
// and cross the network as one envelope, paying the postal model's
// per-message Alpha once per envelope instead of once per payload.
// This is the Charm++ production answer to workloads like BigSim's
// ghost exchange (§4.4) and BT-MZ's boundary exchange (§4.5), whose
// messages are small enough that Alpha dominates.
//
// Accounting rules (the contract tests and workloads rely on):
//
//   - an envelope of payloads p1..pn costs one hop of
//     Alpha + Beta·Σ len(pi.Data) virtual nanoseconds;
//   - the envelope leaves at the latest payload SendTime and every
//     payload shares the envelope's arrival time;
//   - per (sender endpoint, destination entity) delivery order is
//     exactly the SendStream call order — coalescing changes envelope
//     counts and modeled latency, never ordering;
//   - sent/bytes stats count payloads (as in Send); envelopes are
//     tallied separately in AggStats;
//   - a payload whose entity migrated between buffering and flush is
//     forwarded from the envelope's destination PE with one extra
//     per-message hop, like any stale-cache delivery.
//
// Ordering between SendStream and direct Send traffic from the same
// endpoint is NOT defined: direct sends bypass the buffers. Layers
// that mix both (AMPI keeps collectives on the direct path) must not
// rely on cross-path ordering.
package comm

import "fmt"

// AggPolicy sets an endpoint's coalescing flush thresholds. The zero
// value of a field selects its default; an explicit Flush is always
// available regardless of policy.
type AggPolicy struct {
	// MaxPayloads flushes a destination buffer when it holds this
	// many messages (default 16).
	MaxPayloads int
	// MaxBytes flushes a destination buffer when its payload bytes
	// reach this (default 8192).
	MaxBytes int
}

// Defaults for AggPolicy zero fields.
const (
	DefaultAggMaxPayloads = 16
	DefaultAggMaxBytes    = 8192
)

func (p AggPolicy) normalized() AggPolicy {
	if p.MaxPayloads <= 0 {
		p.MaxPayloads = DefaultAggMaxPayloads
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultAggMaxBytes
	}
	return p
}

// aggBucket accumulates payloads bound for one destination PE.
type aggBucket struct {
	msgs     []*Message
	bytes    int
	sendTime float64 // latest payload SendTime — the envelope departure
}

// aggregator is an endpoint's streaming state: one bucket per
// destination PE. Guarded by Endpoint.aggMu; flushes complete while
// the lock is held so envelopes from one sender leave in order.
type aggregator struct {
	policy  AggPolicy
	buckets []aggBucket
}

// EnableAggregation turns on streaming aggregation for SendStream
// calls on this endpoint (zero-value policy fields select defaults).
// Calling it again replaces the policy; already-buffered messages
// stay buffered under the new thresholds until the next SendStream or
// Flush.
func (e *Endpoint) EnableAggregation(p AggPolicy) {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		e.agg = &aggregator{buckets: make([]aggBucket, len(e.net.endpoints))}
	}
	e.agg.policy = p.normalized()
}

// AggregationEnabled reports whether SendStream coalesces on this
// endpoint.
func (e *Endpoint) AggregationEnabled() bool {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	return e.agg != nil
}

// EnableAggregation enables streaming aggregation on every endpoint.
func (n *Network) EnableAggregation(p AggPolicy) {
	for _, e := range n.endpoints {
		e.EnableAggregation(p)
	}
}

// SendStream routes msg like Send but through the streaming
// aggregation path: the message is buffered by destination PE and
// crosses the network inside the next envelope for that PE (when a
// policy threshold trips, or at an explicit Flush). Falls back to
// Send when aggregation is not enabled.
func (e *Endpoint) SendStream(msg *Message) error {
	if msg == nil {
		return fmt.Errorf("comm: SendStream(nil)")
	}
	e.aggMu.Lock()
	if e.agg == nil {
		e.aggMu.Unlock()
		return e.Send(msg)
	}
	dest, err := e.net.Locate(msg.To)
	if err != nil {
		e.aggMu.Unlock()
		return err
	}
	// Payload stats at entry, exactly like Send.
	e.net.sent.Add(1)
	e.net.bytes.Add(uint64(len(msg.Data)))
	b := &e.agg.buckets[dest]
	b.msgs = append(b.msgs, msg)
	b.bytes += len(msg.Data)
	if msg.SendTime > b.sendTime {
		b.sendTime = msg.SendTime
	}
	var ferr error
	if len(b.msgs) >= e.agg.policy.MaxPayloads || b.bytes >= e.agg.policy.MaxBytes {
		ferr = e.flushBucketLocked(dest)
	}
	e.aggMu.Unlock()
	return ferr
}

// Flush sends every buffered payload on its way immediately,
// regardless of the thresholds — the explicit-flush policy. Blocking
// layers call it before parking so coalesced messages cannot deadlock
// a quiescing machine. No-op when aggregation is off or the buffers
// are empty.
func (e *Endpoint) Flush() error {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		return nil
	}
	var first error
	for pe := range e.agg.buckets {
		if err := e.flushBucketLocked(pe); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BufferedPayloads reports how many messages wait in this endpoint's
// coalescing buffers (diagnostics and tests).
func (e *Endpoint) BufferedPayloads() int {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		return 0
	}
	n := 0
	for i := range e.agg.buckets {
		n += len(e.agg.buckets[i].msgs)
	}
	return n
}

// flushBucketLocked ships the bucket for destination PE pe as one
// envelope: one Alpha plus the summed Beta·bytes, every payload
// stamped with the envelope's arrival. Caller holds e.aggMu — the
// envelope is fanned out before the lock is released, which is what
// keeps one sender's envelopes (and therefore its payloads per
// destination entity) in order.
func (e *Endpoint) flushBucketLocked(pe int) error {
	b := &e.agg.buckets[pe]
	if len(b.msgs) == 0 {
		return nil
	}
	msgs, bytes, departs := b.msgs, b.bytes, b.sendTime
	b.msgs, b.bytes, b.sendTime = nil, 0, 0
	arrival := departs + e.net.lat.Cost(bytes)
	e.net.envelopes.Add(1)
	e.net.aggPayloads.Add(uint64(len(msgs)))
	var first error
	// Fan-out: payloads whose entity is still on pe deliver in one
	// batch; any that migrated since buffering forward individually.
	deliverable := msgs[:0]
	for _, m := range msgs {
		m.Hops++
		m.Arrival = arrival
		actual, err := e.net.Locate(m.To)
		if err != nil {
			// The entity vanished between buffering and flush
			// (deregistered). Surface it; remaining payloads still go.
			if first == nil {
				first = fmt.Errorf("comm: flush to PE %d: %w", pe, err)
			}
			continue
		}
		if actual != pe {
			e.net.forwards.Add(1)
			if e.net.xport == nil {
				e.noteLocation(m.To, actual)
			}
			m.SendTime = arrival // forwarding leaves on arrival
			if err := e.net.forwardTo(m, actual); err != nil && first == nil {
				first = err
			}
			continue
		}
		deliverable = append(deliverable, m)
	}
	e.net.deliverBatchTo(pe, deliverable)
	return first
}
