// Streaming message aggregation (TRAM-style): fine-grained messages
// bound for the same destination PE coalesce in a per-endpoint buffer
// and cross the network as one envelope, paying the postal model's
// per-message Alpha once per envelope instead of once per payload.
// This is the Charm++ production answer to workloads like BigSim's
// ghost exchange (§4.4) and BT-MZ's boundary exchange (§4.5), whose
// messages are small enough that Alpha dominates.
//
// Accounting rules (the contract tests and workloads rely on):
//
//   - an envelope of payloads p1..pn costs one hop of
//     Alpha + Beta·Σ len(pi.Data) virtual nanoseconds;
//   - the envelope leaves at the latest payload SendTime and every
//     payload shares the envelope's arrival time;
//   - per (sender endpoint, destination entity) delivery order is
//     exactly the SendStream call order — coalescing changes envelope
//     counts and modeled latency, never ordering;
//   - sent/bytes stats count payloads (as in Send); envelopes are
//     tallied separately in AggStats;
//   - a payload whose entity migrated between buffering and flush is
//     forwarded from the envelope's destination PE with one extra
//     per-message hop, like any stale-cache delivery.
//
// Ordering between SendStream and direct Send traffic from the same
// endpoint is NOT defined: direct sends bypass the buffers. Layers
// that mix both (AMPI keeps collectives on the direct path) must not
// rely on cross-path ordering.
package comm

import (
	"fmt"
	"time"
)

// AggPolicy sets an endpoint's coalescing flush thresholds. The zero
// value of a field selects its default; an explicit Flush is always
// available regardless of policy.
//
// MaxDelay and Adaptive steer only *wall-clock* behaviour: when a
// bucket flushes (and so how payloads group into envelopes) becomes
// timing-dependent, which moves the comm-level Arrival stamps and PE
// clocks, but never the program-model virtual time — a program rank's
// VT is computed from each message's own VTime and size
// (ampi/program.go consume), independent of envelope composition. The
// property test in ampi asserts per-rank VT is bitwise identical
// across random MaxDelay/Adaptive policies. Layers that need strictly
// modeled envelope timing (the thread-API latency benchmarks) should
// keep MaxDelay = 0 and Adaptive = false, which is the default and
// bit-for-bit the old behaviour.
type AggPolicy struct {
	// MaxPayloads flushes a destination buffer when it holds this
	// many messages (default 16).
	MaxPayloads int
	// MaxBytes flushes a destination buffer when its payload bytes
	// reach this (default 8192).
	MaxBytes int
	// MaxDelay bounds how long a buffered payload may wait for its
	// bucket to fill: a Nagle-style per-destination deadline after
	// which a background flush pushes the bucket out with no explicit
	// Flush call. 0 disables the deadline (flush only on thresholds
	// or Flush).
	MaxDelay time.Duration
	// Adaptive scales the effective thresholds by transport
	// backpressure (Backlogger): batches widen up to
	// adaptiveMaxFactor× while the wire is backed up and shrink
	// toward prompt dispatch when it is idle.
	Adaptive bool
}

// Defaults for AggPolicy zero fields.
const (
	DefaultAggMaxPayloads = 16
	DefaultAggMaxBytes    = 8192
)

// Adaptive-mode tuning: thresholds widen by one configured batch per
// adaptiveBacklogUnit bytes of unconsumed wire backlog (capped at
// adaptiveMaxFactor×) and shrink to 1/adaptiveIdleShrink of the
// configured batch when the wire is idle.
const (
	adaptiveBacklogUnit = 4096
	adaptiveMaxFactor   = 8
	adaptiveIdleShrink  = 4
)

func (p AggPolicy) normalized() AggPolicy {
	if p.MaxPayloads <= 0 {
		p.MaxPayloads = DefaultAggMaxPayloads
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultAggMaxBytes
	}
	if p.MaxDelay < 0 {
		p.MaxDelay = 0
	}
	return p
}

// aggBucket accumulates payloads bound for one destination PE.
type aggBucket struct {
	msgs     []*Message
	bytes    int
	sendTime float64   // latest payload SendTime — the envelope departure
	since    time.Time // wall time the first payload was buffered
}

// aggregator is an endpoint's streaming state: one bucket per
// destination PE. Guarded by Endpoint.aggMu; flushes complete while
// the lock is held so envelopes from one sender leave in order.
type aggregator struct {
	policy  AggPolicy
	buckets []aggBucket

	// Deadline-flush state (MaxDelay > 0): one timer per endpoint,
	// armed for the earliest pending bucket deadline. deadline is
	// what the timer is currently set for (zero = unarmed). deferred
	// holds an error from a background flush until the next
	// SendStream/Flush can surface it.
	timer    *time.Timer
	deadline time.Time
	deferred error
}

// effective returns the thresholds this send should flush at: the
// configured policy, or — in Adaptive mode — the policy scaled by the
// transport's backlog. x is the network's transport (possibly nil on
// the in-process backend, which reports as an idle wire).
func (a *aggregator) effective(x Transport) (maxPayloads, maxBytes int) {
	p := a.policy
	if !p.Adaptive {
		return p.MaxPayloads, p.MaxBytes
	}
	backlog := 0
	if bl, ok := x.(Backlogger); ok {
		backlog = bl.Backlog()
	}
	if backlog <= 0 {
		return max(1, p.MaxPayloads/adaptiveIdleShrink), max(1, p.MaxBytes/adaptiveIdleShrink)
	}
	f := 1 + backlog/adaptiveBacklogUnit
	if f > adaptiveMaxFactor {
		f = adaptiveMaxFactor
	}
	return p.MaxPayloads * f, p.MaxBytes * f
}

// EnableAggregation turns on streaming aggregation for SendStream
// calls on this endpoint (zero-value policy fields select defaults).
// Calling it again replaces the policy; already-buffered messages
// stay buffered under the new thresholds until the next SendStream or
// Flush.
func (e *Endpoint) EnableAggregation(p AggPolicy) {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		e.agg = &aggregator{buckets: make([]aggBucket, len(e.net.endpoints))}
	}
	e.agg.policy = p.normalized()
}

// AggregationEnabled reports whether SendStream coalesces on this
// endpoint.
func (e *Endpoint) AggregationEnabled() bool {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	return e.agg != nil
}

// EnableAggregation enables streaming aggregation on every endpoint.
func (n *Network) EnableAggregation(p AggPolicy) {
	for _, e := range n.endpoints {
		e.EnableAggregation(p)
	}
}

// SendStream routes msg like Send but through the streaming
// aggregation path: the message is buffered by destination PE and
// crosses the network inside the next envelope for that PE (when a
// policy threshold trips, or at an explicit Flush). Falls back to
// Send when aggregation is not enabled.
func (e *Endpoint) SendStream(msg *Message) error {
	if msg == nil {
		return fmt.Errorf("comm: SendStream(nil)")
	}
	e.aggMu.Lock()
	if e.agg == nil {
		e.aggMu.Unlock()
		return e.Send(msg)
	}
	dest, err := e.net.Locate(msg.To)
	if err != nil {
		e.aggMu.Unlock()
		return err
	}
	// Payload stats at entry, exactly like Send.
	e.net.sent.Add(1)
	e.net.bytes.Add(uint64(len(msg.Data)))
	b := &e.agg.buckets[dest]
	b.msgs = append(b.msgs, msg)
	b.bytes += len(msg.Data)
	if msg.SendTime > b.sendTime {
		b.sendTime = msg.SendTime
	}
	if len(b.msgs) == 1 && e.agg.policy.MaxDelay > 0 {
		b.since = time.Now()
		e.armTimerLocked(b.since.Add(e.agg.policy.MaxDelay))
	}
	var ferr error
	maxPayloads, maxBytes := e.agg.effective(e.net.xport)
	if len(b.msgs) >= maxPayloads || b.bytes >= maxBytes {
		ferr = e.flushBucketLocked(dest)
	}
	if d := e.agg.deferred; d != nil && ferr == nil {
		e.agg.deferred, ferr = nil, d
	}
	e.aggMu.Unlock()
	return ferr
}

// armTimerLocked makes sure the endpoint's deadline timer fires no
// later than deadline. Caller holds aggMu.
func (e *Endpoint) armTimerLocked(deadline time.Time) {
	a := e.agg
	if a.timer == nil {
		a.timer = time.AfterFunc(time.Until(deadline), e.autoFlush)
		a.deadline = deadline
		return
	}
	if a.deadline.IsZero() || deadline.Before(a.deadline) {
		a.timer.Reset(time.Until(deadline))
		a.deadline = deadline
	}
}

// autoFlush is the MaxDelay timer body: flush every bucket whose
// oldest payload has waited out the deadline, then re-arm for the
// next pending one. Errors park in agg.deferred for the next
// foreground call — a background goroutine has no caller to hand them
// to (transport-level failures still panic inside the flush, per the
// delivery contract).
func (e *Endpoint) autoFlush() {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	a := e.agg
	if a == nil || a.policy.MaxDelay <= 0 {
		return
	}
	a.deadline = time.Time{}
	now := time.Now()
	var next time.Time
	for pe := range a.buckets {
		b := &a.buckets[pe]
		if len(b.msgs) == 0 {
			continue
		}
		due := b.since.Add(a.policy.MaxDelay)
		if !due.After(now) {
			if err := e.flushBucketLocked(pe); err != nil && a.deferred == nil {
				a.deferred = err
			}
		} else if next.IsZero() || due.Before(next) {
			next = due
		}
	}
	if !next.IsZero() {
		e.armTimerLocked(next)
	}
}

// Flush sends every buffered payload on its way immediately,
// regardless of the thresholds — the explicit-flush policy. Blocking
// layers call it before parking so coalesced messages cannot deadlock
// a quiescing machine. No-op when aggregation is off or the buffers
// are empty.
func (e *Endpoint) Flush() error {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		return nil
	}
	var first error
	if d := e.agg.deferred; d != nil {
		e.agg.deferred, first = nil, d
	}
	for pe := range e.agg.buckets {
		if err := e.flushBucketLocked(pe); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BufferedPayloads reports how many messages wait in this endpoint's
// coalescing buffers (diagnostics and tests).
func (e *Endpoint) BufferedPayloads() int {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg == nil {
		return 0
	}
	n := 0
	for i := range e.agg.buckets {
		n += len(e.agg.buckets[i].msgs)
	}
	return n
}

// flushBucketLocked ships the bucket for destination PE pe as one
// envelope: one Alpha plus the summed Beta·bytes, every payload
// stamped with the envelope's arrival. Caller holds e.aggMu — the
// envelope is fanned out before the lock is released, which is what
// keeps one sender's envelopes (and therefore its payloads per
// destination entity) in order.
func (e *Endpoint) flushBucketLocked(pe int) error {
	b := &e.agg.buckets[pe]
	if len(b.msgs) == 0 {
		return nil
	}
	msgs, bytes, departs := b.msgs, b.bytes, b.sendTime
	b.msgs, b.bytes, b.sendTime, b.since = nil, 0, 0, time.Time{}
	arrival := departs + e.net.lat.Cost(bytes)
	e.net.envelopes.Add(1)
	e.net.aggPayloads.Add(uint64(len(msgs)))
	var first error
	// Fan-out: payloads whose entity is still on pe deliver in one
	// batch; any that migrated since buffering forward individually.
	deliverable := msgs[:0]
	for _, m := range msgs {
		m.Hops++
		m.Arrival = arrival
		actual, err := e.net.Locate(m.To)
		if err != nil {
			// The entity vanished between buffering and flush
			// (deregistered). Surface it; remaining payloads still go.
			if first == nil {
				first = fmt.Errorf("comm: flush to PE %d: %w", pe, err)
			}
			continue
		}
		if actual != pe {
			e.net.forwards.Add(1)
			if e.net.xport == nil {
				e.noteLocation(m.To, actual)
			}
			m.SendTime = arrival // forwarding leaves on arrival
			if err := e.net.forwardTo(m, actual); err != nil && first == nil {
				first = err
			}
			continue
		}
		deliverable = append(deliverable, m)
	}
	e.net.deliverBatchTo(pe, deliverable)
	return first
}
