package comm

import (
	"sync"
	"testing"
)

func TestLatencyModel(t *testing.T) {
	m := LatencyModel{Alpha: 100, BetaPerByte: 2}
	if got := m.Cost(10); got != 120 {
		t.Errorf("Cost(10) = %g, want 120", got)
	}
}

func TestRegisterLocateDeregister(t *testing.T) {
	n := NewNetwork(4, DefaultLatency)
	if n.NumPEs() != 4 {
		t.Fatalf("NumPEs = %d", n.NumPEs())
	}
	if err := n.Register(7, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(7, 3); err == nil {
		t.Error("double Register accepted")
	}
	if err := n.Register(8, 9); err == nil {
		t.Error("out-of-range PE accepted")
	}
	pe, err := n.Locate(7)
	if err != nil || pe != 2 {
		t.Errorf("Locate = %d/%v", pe, err)
	}
	n.Deregister(7)
	if _, err := n.Locate(7); err == nil {
		t.Error("Locate after Deregister should error")
	}
}

func TestSendDeliver(t *testing.T) {
	n := NewNetwork(2, LatencyModel{Alpha: 1000, BetaPerByte: 1})
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	msg := &Message{To: 1, From: 99, Tag: 5, Data: []byte("abc"), SendTime: 500}
	if err := n.Endpoint(0).Send(msg); err != nil {
		t.Fatal(err)
	}
	got := n.Endpoint(1).Poll()
	if got == nil {
		t.Fatal("no message delivered")
	}
	if got.Tag != 5 || string(got.Data) != "abc" {
		t.Errorf("message mangled: %+v", got)
	}
	if got.Hops != 1 {
		t.Errorf("Hops = %d, want 1", got.Hops)
	}
	if want := 500 + 1000 + 3.0; got.Arrival != want {
		t.Errorf("Arrival = %g, want %g", got.Arrival, want)
	}
	if n.Endpoint(1).Poll() != nil {
		t.Error("phantom second message")
	}
}

func TestSendToUnknownEntity(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Endpoint(0).Send(&Message{To: 42}); err == nil {
		t.Error("send to unregistered entity should error")
	}
	if err := n.Endpoint(0).Send(nil); err == nil {
		t.Error("nil message accepted")
	}
}

func TestMigrationForwarding(t *testing.T) {
	n := NewNetwork(3, LatencyModel{Alpha: 100})
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	// Prime PE 0's cache with a first send.
	if err := n.Endpoint(0).Send(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	if m := n.Endpoint(1).Poll(); m == nil || m.Hops != 1 {
		t.Fatalf("priming message: %+v", m)
	}
	// Entity migrates 1 → 2.
	if err := n.MigrateEntity(1, 2); err != nil {
		t.Fatal(err)
	}
	// Stale cache at PE 0: the next message takes 2 hops via PE 1.
	m2 := &Message{To: 1, SendTime: 0}
	if err := n.Endpoint(0).Send(m2); err != nil {
		t.Fatal(err)
	}
	got := n.Endpoint(2).Recv()
	if got.Hops != 2 {
		t.Errorf("post-migration Hops = %d, want 2 (forwarded)", got.Hops)
	}
	if got.Arrival != 200 {
		t.Errorf("forwarded Arrival = %g, want 200 (two hops)", got.Arrival)
	}
	if n.Endpoint(1).Pending() != 0 {
		t.Error("forwarding left a copy at the old PE")
	}
	// Cache corrected: third message goes direct.
	m3 := &Message{To: 1}
	if err := n.Endpoint(0).Send(m3); err != nil {
		t.Fatal(err)
	}
	if got := n.Endpoint(2).Recv(); got.Hops != 1 {
		t.Errorf("cache not corrected: Hops = %d, want 1", got.Hops)
	}
	s := n.Snapshot()
	sent, forwards := s.Sent, s.Forwards
	if sent != 3 || forwards != 1 {
		t.Errorf("stats = %d sent, %d forwards; want 3, 1", sent, forwards)
	}
}

func TestMigrateEntityErrors(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.MigrateEntity(5, 1); err == nil {
		t.Error("migrating unregistered entity accepted")
	}
	if err := n.Register(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.MigrateEntity(5, 7); err == nil {
		t.Error("migrating to bad PE accepted")
	}
}

func TestRecvBlocksUntilDelivery(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan *Message)
	go func() { done <- n.Endpoint(1).Recv() }()
	if err := n.Endpoint(0).Send(&Message{To: 1, Tag: 9}); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got.Tag != 9 {
		t.Errorf("Recv got %+v", got)
	}
}

func TestWakeHook(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	n.Endpoint(1).SetWakeHook(func() {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		if err := n.Endpoint(0).Send(&Message{To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Errorf("hook calls = %d, want 3", calls)
	}
}

func TestStatsBytes(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Endpoint(0).Send(&Message{To: 1, Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	bytes := n.Snapshot().Bytes
	if bytes != 100 {
		t.Errorf("bytes = %d, want 100", bytes)
	}
}

// TestForwardingChainBounded: however many times an entity migrated
// while a sender's cache was stale, delivery takes at most two hops
// (wrong PE → authoritative location), and the cache self-corrects.
func TestForwardingChainBounded(t *testing.T) {
	n := NewNetwork(5, LatencyModel{Alpha: 10})
	if err := n.Register(1, 0); err != nil {
		t.Fatal(err)
	}
	// Prime PE 4's cache.
	if err := n.Endpoint(4).Send(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	n.Endpoint(0).Recv()
	// The entity hops 0→1→2→3 with no traffic in between.
	for _, pe := range []int{1, 2, 3} {
		if err := n.MigrateEntity(1, pe); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Endpoint(4).Send(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	m := n.Endpoint(3).Recv()
	if m.Hops != 2 {
		t.Errorf("delivery after 3 silent migrations took %d hops, want 2", m.Hops)
	}
	if err := n.Endpoint(4).Send(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	if m := n.Endpoint(3).Recv(); m.Hops != 1 {
		t.Errorf("cache not corrected: %d hops", m.Hops)
	}
	s := n.Snapshot()
	sent, forwards := s.Sent, s.Forwards
	if sent != 3 || forwards != 1 {
		t.Errorf("stats = %d sent, %d forwards; want 3, 1", sent, forwards)
	}
}

// TestStatsCountResends: re-sending a message object that already
// carries hops (a retry) is one more send of its payload. The old
// implementation gated sent/bytes on msg.Hops == 1 — computed after
// incrementing Hops — so every retry silently vanished from the
// counters.
func TestStatsCountResends(t *testing.T) {
	n := NewNetwork(2, LatencyModel{})
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	msg := &Message{To: 1, Data: make([]byte, 10)}
	for i := 0; i < 3; i++ {
		if err := n.Endpoint(0).Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	snap := n.Snapshot()
	sent, bytes := snap.Sent, snap.Bytes
	if sent != 3 || bytes != 30 {
		t.Errorf("stats = %d sent, %d bytes; want 3 sent, 30 bytes", sent, bytes)
	}
}

// TestInOrderPerSenderPair: messages from one sender to one entity
// arrive in send order, even across a migration mid-stream.
func TestInOrderPerSenderPair(t *testing.T) {
	n := NewNetwork(3, LatencyModel{})
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := n.Endpoint(0).Send(&Message{To: 1, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if m := n.Endpoint(1).Recv(); m.Tag != i {
			t.Fatalf("out of order: got %d at position %d", m.Tag, i)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(4, DefaultLatency)
	if err := n.Register(1, 3); err != nil {
		t.Fatal(err)
	}
	const per = 50
	var wg sync.WaitGroup
	for pe := 0; pe < 3; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := n.Endpoint(pe).Send(&Message{To: 1, Tag: pe}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(pe)
	}
	wg.Wait()
	if got := n.Endpoint(3).Pending(); got != 3*per {
		t.Errorf("delivered %d, want %d", got, 3*per)
	}
}

func TestEndpointPE(t *testing.T) {
	n := NewNetwork(3, DefaultLatency)
	for pe := 0; pe < 3; pe++ {
		if n.Endpoint(pe).PE() != pe {
			t.Errorf("endpoint %d reports PE %d", pe, n.Endpoint(pe).PE())
		}
	}
}
