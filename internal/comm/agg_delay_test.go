package comm

import (
	"testing"
	"time"
)

// TestAggregationMaxDelayDelivers is the deadline-semantics contract:
// a payload buffered below every threshold must still arrive within
// MaxDelay, with no explicit Flush anywhere.
func TestAggregationMaxDelayDelivers(t *testing.T) {
	n := NewNetwork(2, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.Register(EntityID(7), 1); err != nil {
		t.Fatal(err)
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{MaxPayloads: 1000, MaxBytes: 1 << 20, MaxDelay: 10 * time.Millisecond})
	if err := src.SendStream(&Message{To: 7, From: 1, Data: []byte("late"), SendTime: 3}); err != nil {
		t.Fatal(err)
	}
	if src.BufferedPayloads() != 1 {
		t.Fatal("payload should be buffered, not flushed")
	}
	dst := n.Endpoint(1)
	waitFor(t, "deadline flush", func() bool { return dst.Pending() == 1 })
	if src.BufferedPayloads() != 0 {
		t.Fatal("bucket should be empty after the deadline flush")
	}
	m := dst.Poll()
	// The deadline flush uses the same accounting as any flush: one
	// envelope, arrival = departure + cost.
	if want := 3 + n.Latency().Cost(4); m.Arrival != want {
		t.Fatalf("arrival %v, want %v", m.Arrival, want)
	}
	if s := n.Snapshot(); s.Envelopes != 1 || s.AggPayloads != 1 {
		t.Fatalf("agg stats: %+v", s)
	}
}

// TestAggregationMaxDelayRearms staggers two buckets and checks the
// single endpoint timer services both deadlines.
func TestAggregationMaxDelayRearms(t *testing.T) {
	n := NewNetwork(3, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.Register(EntityID(7), 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(EntityID(8), 2); err != nil {
		t.Fatal(err)
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{MaxPayloads: 1000, MaxDelay: 15 * time.Millisecond})
	if err := src.SendStream(&Message{To: 7, From: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := src.SendStream(&Message{To: 8, From: 1, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first bucket", func() bool { return n.Endpoint(1).Pending() == 1 })
	waitFor(t, "second bucket", func() bool { return n.Endpoint(2).Pending() == 1 })
}

// TestAggregationMaxDelayAcrossWire runs the deadline flush over the
// shared-memory fabric: the buffered payload crosses the process-
// style boundary with no Flush call on either side.
func TestAggregationMaxDelayAcrossWire(t *testing.T) {
	n0, n1, t0, t1 := twoShmShards(t, 0)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(9), 2); err != nil {
			t.Fatal(err)
		}
	}
	n0.EnableAggregation(AggPolicy{MaxPayloads: 1000, MaxDelay: 10 * time.Millisecond})
	shmStart(t, t0, t1)
	if err := n0.Endpoint(0).SendStream(&Message{To: 9, From: 1, Data: []byte("wxyz")}); err != nil {
		t.Fatal(err)
	}
	dst := n1.Endpoint(2)
	waitFor(t, "cross-wire deadline flush", func() bool { return dst.Pending() == 1 })
}

// backlogStub is a Transport whose Backlog the test dials directly.
type backlogStub struct{ n int }

func (s *backlogStub) Deliver(pe int, msgs []*Message) error { return nil }
func (s *backlogStub) Close() error                          { return nil }
func (s *backlogStub) Backlog() int                          { return s.n }

// TestAdaptiveThresholds pins the adaptive scaling rule: idle wire
// shrinks the batch, backlog widens it linearly up to the cap, and
// non-adaptive policies pass through untouched.
func TestAdaptiveThresholds(t *testing.T) {
	a := &aggregator{policy: AggPolicy{MaxPayloads: 16, MaxBytes: 8192, Adaptive: true}.normalized()}
	stub := &backlogStub{}
	check := func(backlog, wantP, wantB int) {
		t.Helper()
		stub.n = backlog
		if p, b := a.effective(stub); p != wantP || b != wantB {
			t.Fatalf("backlog %d: got (%d, %d), want (%d, %d)", backlog, p, b, wantP, wantB)
		}
	}
	check(0, 4, 2048)                          // idle: shrink 4x
	check(1, 16, 8192)                         // any backlog: at least configured
	check(adaptiveBacklogUnit, 32, 16384)      // one unit: 2x
	check(100*adaptiveBacklogUnit, 128, 65536) // capped at 8x

	// nil transport (in-process backend) reads as idle.
	if p, b := a.effective(nil); p != 4 || b != 2048 {
		t.Fatalf("nil transport: got (%d, %d)", p, b)
	}
	// Non-adaptive ignores backlog entirely.
	a2 := &aggregator{policy: AggPolicy{MaxPayloads: 16, MaxBytes: 8192}.normalized()}
	stub.n = 1 << 20
	if p, b := a2.effective(stub); p != 16 || b != 8192 {
		t.Fatalf("non-adaptive: got (%d, %d)", p, b)
	}
}

// TestAdaptiveIdleFlushesPromptly checks the observable behaviour on
// an idle in-process network: with Adaptive set, a 16-payload policy
// dispatches after MaxPayloads/adaptiveIdleShrink sends.
func TestAdaptiveIdleFlushesPromptly(t *testing.T) {
	n := NewNetwork(2, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.Register(EntityID(7), 1); err != nil {
		t.Fatal(err)
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{MaxPayloads: 16, Adaptive: true})
	for i := 0; i < 4; i++ {
		if err := src.SendStream(&Message{To: 7, From: 1, Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Endpoint(1).Pending(); got != 4 {
		t.Fatalf("idle adaptive batch should flush at 4 payloads, delivered %d", got)
	}
	if src.BufferedPayloads() != 0 {
		t.Fatal("bucket should have flushed")
	}
}
