package comm

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSendMigrateStress hammers the sharded directory from
// all sides at once: sender PEs stream tagged messages to a set of
// entities while another goroutine migrates those entities between
// receiver PEs. Run under -race this exercises every lock-free read
// path against concurrent directory writes. Afterwards it checks the
// delivery guarantees that must survive the sharding:
//
//   - conservation: every message sent is in exactly one inbox;
//   - in-order per (sender, destination) within each inbox: a
//     sender's tags to one entity appear in ascending order;
//   - stats: sends are counted once per Send call, independent of how
//     many forwarding hops migration races caused.
func TestConcurrentSendMigrateStress(t *testing.T) {
	const (
		senders   = 4
		receivers = 4
		entities  = 8
		perSender = 500
	)
	n := NewNetwork(senders+receivers, LatencyModel{})
	for e := 0; e < entities; e++ {
		if err := n.Register(EntityID(e+1), senders+e%receivers); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var migrator sync.WaitGroup
	migrator.Add(1)
	go func() {
		defer migrator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := EntityID(i%entities + 1)
			if err := n.MigrateEntity(id, senders+(i+1)%receivers); err != nil {
				t.Errorf("migrate %d: %v", id, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := n.Endpoint(s)
			for i := 0; i < perSender; i++ {
				msg := &Message{
					To:   EntityID(i%entities + 1),
					From: EntityID(1000 + s),
					Tag:  i,
				}
				if err := ep.Send(msg); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(stop)
	migrator.Wait()

	total := 0
	for r := 0; r < receivers; r++ {
		lastTag := make(map[string]int)
		for {
			m := n.Endpoint(senders + r).Poll()
			if m == nil {
				break
			}
			total++
			key := fmt.Sprintf("%d->%d", m.From, m.To)
			if last, ok := lastTag[key]; ok && m.Tag <= last {
				t.Fatalf("inbox %d: %s tag %d after %d — out of order", r, key, m.Tag, last)
			}
			lastTag[key] = m.Tag
		}
	}
	if want := senders * perSender; total != want {
		t.Errorf("delivered %d messages, want %d", total, want)
	}
	sent := n.Snapshot().Sent
	if want := uint64(senders * perSender); sent != want {
		t.Errorf("sent stat = %d, want %d (one per Send call)", sent, want)
	}
}
