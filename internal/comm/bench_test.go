package comm

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSend measures the hot send→deliver→poll path with 8
// concurrent sender PEs, each streaming to its own destination entity
// on a distinct receiver PE. This is the contention profile of a
// scaling run: every sender resolves the directory and touches stats
// on every message, so a serializing directory lock shows up directly
// in ns/op.
func BenchmarkSend(b *testing.B) {
	const senders = 8
	n := NewNetwork(2*senders, LatencyModel{Alpha: 100, BetaPerByte: 1})
	for i := 0; i < senders; i++ {
		if err := n.Register(EntityID(i+1), senders+i); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, 64)
	var next atomic.Int64
	b.SetParallelism(1) // exactly one goroutine per sender PE at GOMAXPROCS≥8
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1)-1) % senders
		src := n.Endpoint(id)
		dst := n.Endpoint(senders + id)
		msg := &Message{To: EntityID(id + 1), From: EntityID(100 + id), Data: payload}
		for pb.Next() {
			msg.Hops = 0
			if err := src.Send(msg); err != nil {
				b.Error(err)
				return
			}
			// Drain so the inbox stays bounded; popping is part of the
			// hot path a pumping PE pays anyway.
			if dst.Poll() == nil {
				b.Error("message not delivered")
				return
			}
		}
	})
}

// BenchmarkSendSerial is the single-sender baseline for BenchmarkSend:
// the same path with zero cross-PE contention.
func BenchmarkSendSerial(b *testing.B) {
	n := NewNetwork(2, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.Register(1, 1); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	src, dst := n.Endpoint(0), n.Endpoint(1)
	msg := &Message{To: 1, From: 100, Data: payload}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Hops = 0
		if err := src.Send(msg); err != nil {
			b.Fatal(err)
		}
		if dst.Poll() == nil {
			b.Fatal("message not delivered")
		}
	}
}

// BenchmarkInbox measures the endpoint queue alone: a burst of
// deliveries followed by a full drain, the pattern a pumping PE sees.
func BenchmarkInbox(b *testing.B) {
	n := NewNetwork(2, LatencyModel{})
	if err := n.Register(1, 1); err != nil {
		b.Fatal(err)
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	const burst = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := src.Send(&Message{To: 1}); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < burst; j++ {
			if dst.Poll() == nil {
				b.Fatal("lost message")
			}
		}
	}
}

// BenchmarkAggExchange compares a ghost-exchange-shaped burst — 64
// small messages to entities packed on one destination PE — routed
// per-message (direct) versus through streaming aggregation (agg).
// Aggregation pays the inbox lock and wakeup once per envelope
// instead of once per payload, so the wall-clock win shows up here;
// the modeled-latency win (one Alpha per envelope) shows up in the
// workload numbers.
func BenchmarkAggExchange(b *testing.B) {
	const burst = 64
	run := func(b *testing.B, stream bool) {
		n := NewNetwork(2, LatencyModel{Alpha: 10_000, BetaPerByte: 4})
		for i := 0; i < 8; i++ {
			if err := n.Register(EntityID(i+1), 1); err != nil {
				b.Fatal(err)
			}
		}
		src, dst := n.Endpoint(0), n.Endpoint(1)
		if stream {
			src.EnableAggregation(AggPolicy{MaxPayloads: 16, MaxBytes: 1 << 20})
		}
		payload := make([]byte, 32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < burst; j++ {
				msg := &Message{To: EntityID(j%8 + 1), Data: payload}
				var err error
				if stream {
					err = src.SendStream(msg)
				} else {
					err = src.Send(msg)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if stream {
				if err := src.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			for j := 0; j < burst; j++ {
				if dst.Poll() == nil {
					b.Fatal("lost message")
				}
			}
		}
	}
	b.Run("direct", func(b *testing.B) { run(b, false) })
	b.Run("agg", func(b *testing.B) { run(b, true) })
}

// BenchmarkLocate measures directory lookup throughput with 8
// concurrent readers — the pure read-side scaling of the location
// directory.
func BenchmarkLocate(b *testing.B) {
	const entities = 1024
	n := NewNetwork(8, LatencyModel{})
	for i := 0; i < entities; i++ {
		if err := n.Register(EntityID(i+1), i%8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := EntityID(1)
		for pb.Next() {
			if _, err := n.Locate(id); err != nil {
				b.Error(err)
				return
			}
			id++
			if id > entities {
				id = 1
			}
		}
	})
}
