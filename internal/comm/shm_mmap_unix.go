//go:build unix

package comm

import (
	"os"
	"syscall"
)

// mmapShared maps size bytes of f read-write and shared — both sides
// of a ring see the same physical pages, which is the entire fabric.
func mmapShared(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapShared(b []byte) error { return syscall.Munmap(b) }
