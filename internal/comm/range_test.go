package comm

import (
	"sync"
	"testing"
)

const rangeTestBase = PinnedEntity | 5000

func newRangeNet(t *testing.T, numPEs int, pes []int) *Network {
	t.Helper()
	n := NewNetwork(numPEs, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.RegisterRange(rangeTestBase, pes); err != nil {
		t.Fatalf("RegisterRange: %v", err)
	}
	return n
}

func TestRangeRegisterLocate(t *testing.T) {
	n := newRangeNet(t, 4, []int{0, 1, 2, 3, 0, 1})
	for i := 0; i < 6; i++ {
		pe, err := n.Locate(rangeTestBase + EntityID(i))
		if err != nil {
			t.Fatalf("Locate(%d): %v", i, err)
		}
		if pe != i%4 {
			t.Fatalf("Locate(%d) = %d, want %d", i, pe, i%4)
		}
	}
	if got := n.NumEntities(); got != 6 {
		t.Fatalf("NumEntities = %d, want 6", got)
	}
	if _, err := n.Locate(rangeTestBase + 6); err == nil {
		t.Fatal("Locate past the range end should fail")
	}
	if _, err := n.Locate(rangeTestBase - 1); err == nil {
		t.Fatal("Locate before the range base should fail")
	}
}

func TestRangeRegisterValidation(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.RegisterRange(rangeTestBase, nil); err == nil {
		t.Fatal("empty range should fail")
	}
	if err := n.RegisterRange(rangeTestBase, []int{0, 7}); err == nil {
		t.Fatal("out-of-range PE should fail")
	}
	if err := n.RegisterRange(rangeTestBase, []int{0, 1, 0}); err != nil {
		t.Fatalf("RegisterRange: %v", err)
	}
	if err := n.RegisterRange(rangeTestBase+2, []int{0}); err == nil {
		t.Fatal("overlapping range should fail")
	}
	if err := n.RegisterRange(rangeTestBase+3, []int{1}); err != nil {
		t.Fatalf("adjacent range should register: %v", err)
	}
}

func TestRangeMoveBatch(t *testing.T) {
	n := newRangeNet(t, 4, []int{0, 0, 0, 0})
	if got := n.RangeEpoch(rangeTestBase); got != 0 {
		t.Fatalf("fresh epoch = %d, want 0", got)
	}
	err := n.MoveRangeBatch(rangeTestBase, []RangeMove{{Index: 1, To: 2}, {Index: 3, To: 1}})
	if err != nil {
		t.Fatalf("MoveRangeBatch: %v", err)
	}
	want := []int{0, 2, 0, 1}
	for i, w := range want {
		if pe, _ := n.Locate(rangeTestBase + EntityID(i)); pe != w {
			t.Fatalf("after move, Locate(%d) = %d, want %d", i, pe, w)
		}
	}
	if got := n.RangeEpoch(rangeTestBase); got != 1 {
		t.Fatalf("epoch after one batch = %d, want 1", got)
	}
	// Invalid batches fail whole and leave the table untouched.
	if err := n.MoveRangeBatch(rangeTestBase, []RangeMove{{Index: 0, To: 3}, {Index: 9, To: 0}}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if err := n.MoveRangeBatch(rangeTestBase, []RangeMove{{Index: 0, To: 99}}); err == nil {
		t.Fatal("out-of-range PE should fail")
	}
	if pe, _ := n.Locate(rangeTestBase); pe != 0 {
		t.Fatalf("failed batch moved an entity: PE %d", pe)
	}
	if got := n.RangeEpoch(rangeTestBase); got != 1 {
		t.Fatalf("failed batch bumped the epoch: %d", got)
	}
	if err := n.MoveRangeBatch(rangeTestBase+100, nil); err == nil {
		t.Fatal("unknown base should fail")
	}
}

func TestRangeDeregisterBatchTombstones(t *testing.T) {
	n := newRangeNet(t, 2, []int{0, 1, 0, 1})
	// Mix a shard-map entity into the same batch.
	if err := n.Register(42, 1); err != nil {
		t.Fatal(err)
	}
	n.DeregisterBatch([]EntityID{rangeTestBase + 1, rangeTestBase + 2, 42})
	if got := n.NumEntities(); got != 2 {
		t.Fatalf("NumEntities = %d, want 2", got)
	}
	for _, i := range []int{1, 2} {
		if _, err := n.Locate(rangeTestBase + EntityID(i)); err == nil {
			t.Fatalf("tombstoned entity %d still locatable", i)
		}
	}
	if _, err := n.Locate(42); err == nil {
		t.Fatal("shard entity still locatable")
	}
	if pe, err := n.Locate(rangeTestBase); err != nil || pe != 0 {
		t.Fatalf("surviving entity: (%d, %v)", pe, err)
	}
	// Double deregistration must not double-decrement.
	n.DeregisterBatch([]EntityID{rangeTestBase + 1})
	if got := n.NumEntities(); got != 2 {
		t.Fatalf("NumEntities after re-dereg = %d, want 2", got)
	}
	// A tombstoned entity cannot be moved.
	if err := n.MoveRangeBatch(rangeTestBase, []RangeMove{{Index: 1, To: 0}}); err == nil {
		t.Fatal("moving a tombstoned entity should fail")
	}
	n.DeregisterRange(rangeTestBase)
	if _, err := n.Locate(rangeTestBase); err == nil {
		t.Fatal("entity locatable after DeregisterRange")
	}
	if got := n.NumEntities(); got != 0 {
		t.Fatalf("NumEntities after DeregisterRange = %d, want 0", got)
	}
}

func TestRangeSendAndForwardChase(t *testing.T) {
	n := newRangeNet(t, 3, []int{0, 1})
	id := rangeTestBase + 1
	msg := &Message{To: id, From: rangeTestBase, Data: make([]byte, 8), SendTime: 5}
	if err := n.Endpoint(0).Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Delivered to PE 1, where the entity lives.
	got := n.Endpoint(1).Poll()
	if got == nil {
		t.Fatal("message not delivered to owner PE")
	}
	s0 := n.Snapshot()
	sent0, fwd0 := s0.Sent, s0.Forwards
	if sent0 != 1 || fwd0 != 0 {
		t.Fatalf("stats after direct send = (%d, %d), want (1, 0)", sent0, fwd0)
	}
	// The entity migrates while the receiver still holds the message:
	// the receive side chases with Forward.
	if err := n.MoveRangeBatch(rangeTestBase, []RangeMove{{Index: 1, To: 2}}); err != nil {
		t.Fatal(err)
	}
	arrivalBefore := got.Arrival
	if err := n.Endpoint(1).Forward(got); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	chased := n.Endpoint(2).Poll()
	if chased == nil {
		t.Fatal("forwarded message did not reach the new owner")
	}
	if chased.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", chased.Hops)
	}
	if chased.Arrival <= arrivalBefore {
		t.Fatal("forwarding hop did not delay arrival")
	}
	s1 := n.Snapshot()
	sent1, fwd1 := s1.Sent, s1.Forwards
	if sent1 != 1 {
		t.Fatalf("Forward counted as a send: sent = %d, want 1", sent1)
	}
	if fwd1 != 1 {
		t.Fatalf("forwards = %d, want 1", fwd1)
	}
	// Forwarding to a deregistered entity reports the lookup error.
	n.DeregisterBatch([]EntityID{rangeTestBase + 1})
	if err := n.Endpoint(2).Forward(chased); err == nil {
		t.Fatal("Forward to a deregistered entity should fail")
	}
}

// TestRangeConcurrentMoveAndLocate exercises the batched-update
// protocol under the race detector: senders route while an LB step
// rewrites the table.
func TestRangeConcurrentMoveAndLocate(t *testing.T) {
	const entities = 512
	pes := make([]int, entities)
	for i := range pes {
		pes[i] = i % 4
	}
	n := newRangeNet(t, 4, pes)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i = (i + 1) % entities {
				select {
				case <-stop:
					return
				default:
				}
				msg := &Message{To: rangeTestBase + EntityID(i), Data: nil}
				if err := n.Endpoint(g).Send(msg); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(g)
	}
	for batch := 0; batch < 50; batch++ {
		moves := make([]RangeMove, 0, entities/4)
		for i := batch % 4; i < entities; i += 4 {
			moves = append(moves, RangeMove{Index: i, To: (pes[i] + batch) % 4})
		}
		if err := n.MoveRangeBatch(rangeTestBase, moves); err != nil {
			t.Fatalf("MoveRangeBatch: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if got := n.RangeEpoch(rangeTestBase); got != 50 {
		t.Fatalf("epoch = %d, want 50", got)
	}
}
