// Size-classed frame-buffer recycling for the wire paths. Both
// transports build every outgoing frame in (and read every incoming
// frame into) a buffer drawn from these free lists, so the steady
// state of a sharded run allocates nothing per frame: a buffer's
// lifetime is enqueue → writev (or read → dispatch) → putBuf, and the
// decode side copies payloads out (pup.Bytes allocates fresh slices),
// which is what makes the recycling safe.
//
// The lists are plain mutex-guarded stacks rather than sync.Pool:
// putting a []byte into a sync.Pool boxes the slice header (one
// allocation per recycle), which would defeat the zero-alloc goal the
// transport benchmarks assert. Each class keeps at most bufClassKeep
// buffers; beyond that a returned buffer is dropped for the GC, so an
// envelope burst cannot pin memory forever.
package comm

import (
	"math/bits"
	"sync"
)

const (
	bufMinShift = 6  // smallest class: 64 B
	bufMaxShift = 22 // largest class: 4 MiB; bigger requests bypass the pool
	// bufClassKeep caps retained buffers per class (4 MiB class worst
	// case: 64 × 4 MiB = 256 MiB, but classes only grow to what the
	// run actually used).
	bufClassKeep = 64
)

type bufClass struct {
	mu   sync.Mutex
	free [][]byte
}

var bufClasses [bufMaxShift + 1]bufClass

// getBuf returns a zero-length buffer with capacity ≥ n, recycled
// when a buffer of the right class is free. Callers append into it
// and hand it back with putBuf when the frame is off the wire.
func getBuf(n int) []byte {
	if n < 1 {
		n = 1
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2 n)
	if shift < bufMinShift {
		shift = bufMinShift
	}
	if shift > bufMaxShift {
		return make([]byte, 0, n) // oversized: unpooled
	}
	c := &bufClasses[shift]
	c.mu.Lock()
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		c.mu.Unlock()
		return b[:0]
	}
	c.mu.Unlock()
	return make([]byte, 0, 1<<shift)
}

// putBuf recycles a buffer obtained from getBuf. Buffers whose
// capacity is not an exact class size (oversized requests, or slices
// from elsewhere) are dropped silently.
func putBuf(b []byte) {
	n := cap(b)
	if n == 0 || n&(n-1) != 0 {
		return
	}
	shift := bits.TrailingZeros(uint(n))
	if shift < bufMinShift || shift > bufMaxShift {
		return
	}
	c := &bufClasses[shift]
	c.mu.Lock()
	if len(c.free) < bufClassKeep {
		c.free = append(c.free, b[:0])
	}
	c.mu.Unlock()
}
