package comm

import (
	"fmt"
	"sync"
	"testing"
)

func TestAggCoalesceByCount(t *testing.T) {
	n := NewNetwork(2, LatencyModel{Alpha: 1000, BetaPerByte: 1})
	for i := 1; i <= 4; i++ {
		if err := n.Register(EntityID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	src.EnableAggregation(AggPolicy{MaxPayloads: 4, MaxBytes: 1 << 20})
	for i := 1; i <= 3; i++ {
		if err := src.SendStream(&Message{To: EntityID(i), Data: []byte{byte(i)}, SendTime: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Pending() != 0 {
		t.Fatalf("delivered before threshold: %d pending", dst.Pending())
	}
	if got := src.BufferedPayloads(); got != 3 {
		t.Fatalf("buffered = %d, want 3", got)
	}
	if err := src.SendStream(&Message{To: 4, Data: []byte{4}, SendTime: 4}); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 4 {
		t.Fatalf("envelope fan-out delivered %d, want 4", dst.Pending())
	}
	// One envelope: departs at the latest SendTime (4), costs one
	// Alpha + Beta·(4 payload bytes); every payload shares the arrival.
	wantArr := 4 + 1000 + 4.0
	for i := 1; i <= 4; i++ {
		m := dst.Poll()
		if m == nil {
			t.Fatal("lost payload")
		}
		if m.To != EntityID(i) {
			t.Errorf("payload %d out of order: got entity %d", i, m.To)
		}
		if m.Arrival != wantArr {
			t.Errorf("payload %d arrival = %g, want %g", i, m.Arrival, wantArr)
		}
		if m.Hops != 1 {
			t.Errorf("payload %d hops = %d, want 1", i, m.Hops)
		}
	}
	s := n.Snapshot()
	env, pay := s.Envelopes, s.AggPayloads
	if env != 1 || pay != 4 {
		t.Errorf("AggStats = (%d, %d), want (1, 4)", env, pay)
	}
	if sent, bytes := s.Sent, s.Bytes; sent != 4 || bytes != 4 {
		t.Errorf("Stats sent=%d bytes=%d, want 4, 4", sent, bytes)
	}
}

func TestAggCoalesceByBytes(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	src.EnableAggregation(AggPolicy{MaxPayloads: 1 << 20, MaxBytes: 100})
	if err := src.SendStream(&Message{To: 1, Data: make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 0 {
		t.Fatal("flushed below byte threshold")
	}
	if err := src.SendStream(&Message{To: 1, Data: make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 2 {
		t.Fatalf("byte threshold did not flush: %d pending", dst.Pending())
	}
}

func TestAggExplicitFlush(t *testing.T) {
	n := NewNetwork(3, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(2, 2); err != nil {
		t.Fatal(err)
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{})
	if err := src.SendStream(&Message{To: 1, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := src.SendStream(&Message{To: 2, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	if n.Endpoint(1).Pending() != 1 || n.Endpoint(2).Pending() != 1 {
		t.Error("explicit flush did not reach both destination PEs")
	}
	if s := n.Snapshot(); s.Envelopes != 2 || s.AggPayloads != 2 {
		t.Errorf("Snapshot = (%d, %d), want (2, 2): one envelope per destination PE", s.Envelopes, s.AggPayloads)
	}
	if src.BufferedPayloads() != 0 {
		t.Error("buffers not drained by Flush")
	}
}

// TestAggOrderingPerDest pins the ordering contract: per (sender,
// destination entity), SendStream order is delivery order, across
// envelope boundaries.
func TestAggOrderingPerDest(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(2, 1); err != nil {
		t.Fatal(err)
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	src.EnableAggregation(AggPolicy{MaxPayloads: 3})
	var want []string
	for i := 0; i < 12; i++ {
		to := EntityID(1 + i%2)
		tag := i
		if err := src.SendStream(&Message{To: to, Tag: tag}); err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprintf("%d:%d", to, tag))
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for m := dst.Poll(); m != nil; m = dst.Poll() {
		got = append(got, fmt.Sprintf("%d:%d", m.To, m.Tag))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivery order %v, want %v", got, want)
	}
}

// TestAggMigrationInFlight: an entity that moves between buffering
// and flush is forwarded from the envelope's destination PE with an
// extra hop, like any stale delivery.
func TestAggMigrationInFlight(t *testing.T) {
	n := NewNetwork(3, LatencyModel{Alpha: 100, BetaPerByte: 1})
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{})
	if err := src.SendStream(&Message{To: 1, Data: []byte("xy"), SendTime: 10}); err != nil {
		t.Fatal(err)
	}
	if err := n.MigrateEntity(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	if n.Endpoint(1).Pending() != 0 {
		t.Error("payload stuck on stale PE")
	}
	m := n.Endpoint(2).Poll()
	if m == nil {
		t.Fatal("payload not forwarded to new PE")
	}
	if m.Hops != 2 {
		t.Errorf("hops = %d, want 2 (envelope + forward)", m.Hops)
	}
	// Envelope hop: 10 + (100 + 2) = 112; forward hop re-charges the
	// per-message postal cost from the stale PE.
	if want := 112 + 100 + 2.0; m.Arrival != want {
		t.Errorf("arrival = %g, want %g", m.Arrival, want)
	}
	if fwd := n.Snapshot().Forwards; fwd != 1 {
		t.Errorf("forwards = %d, want 1", fwd)
	}
}

func TestSendStreamFallsBackWithoutAggregation(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Endpoint(0).SendStream(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	if n.Endpoint(1).Pending() != 1 {
		t.Error("fallback Send did not deliver immediately")
	}
	if env := n.Snapshot().Envelopes; env != 0 {
		t.Error("fallback counted an envelope")
	}
}

func TestSendStreamErrors(t *testing.T) {
	n := NewNetwork(2, DefaultLatency)
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{})
	if err := src.SendStream(nil); err == nil {
		t.Error("nil message accepted")
	}
	if err := src.SendStream(&Message{To: 99}); err == nil {
		t.Error("unregistered entity accepted")
	}
	// A payload whose entity deregisters before the flush surfaces an
	// error from Flush without wedging the rest of the bucket.
	if err := n.Register(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := src.SendStream(&Message{To: 1}); err != nil {
		t.Fatal(err)
	}
	if err := src.SendStream(&Message{To: 2}); err != nil {
		t.Fatal(err)
	}
	n.Deregister(1)
	if err := src.Flush(); err == nil {
		t.Error("flush of deregistered entity reported no error")
	}
	if n.Endpoint(1).Pending() != 1 {
		t.Error("surviving payload not delivered")
	}
}

// TestAggConcurrentStream hammers one aggregating endpoint from many
// goroutines (run under -race): counts must balance and nothing may
// be lost or duplicated.
func TestAggConcurrentStream(t *testing.T) {
	const (
		workers = 8
		each    = 500
	)
	n := NewNetwork(4, DefaultLatency)
	for pe := 1; pe < 4; pe++ {
		if err := n.Register(EntityID(pe), pe); err != nil {
			t.Fatal(err)
		}
	}
	src := n.Endpoint(0)
	src.EnableAggregation(AggPolicy{MaxPayloads: 7})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := src.SendStream(&Message{To: EntityID(1 + (w+i)%3), Data: []byte{1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for pe := 1; pe < 4; pe++ {
		total += n.Endpoint(pe).Pending()
	}
	if total != workers*each {
		t.Errorf("delivered %d, want %d", total, workers*each)
	}
	s := n.Snapshot()
	env, pay := s.Envelopes, s.AggPayloads
	if pay != uint64(workers*each) {
		t.Errorf("payloads = %d, want %d", pay, workers*each)
	}
	if env == 0 || env > pay {
		t.Errorf("implausible envelope count %d for %d payloads", env, pay)
	}
}
