package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func randMsg(rng *rand.Rand) *Message {
	data := make([]byte, rng.Intn(64))
	rng.Read(data)
	return &Message{
		To:       EntityID(rng.Uint64()),
		From:     EntityID(rng.Uint64()),
		Tag:      rng.Intn(1<<16) - (1 << 15),
		Hops:     rng.Intn(4),
		Seq:      rng.Uint64() >> uint(rng.Intn(64)),
		SendTime: rng.NormFloat64() * 1e9,
		Arrival:  rng.NormFloat64() * 1e9,
		VTime:    rng.NormFloat64() * 1e9,
		Data:     data,
	}
}

func msgEqual(a, b *Message) bool {
	return a.To == b.To && a.From == b.From && a.Tag == b.Tag && a.Hops == b.Hops && a.Seq == b.Seq &&
		math.Float64bits(a.SendTime) == math.Float64bits(b.SendTime) &&
		math.Float64bits(a.Arrival) == math.Float64bits(b.Arrival) &&
		math.Float64bits(a.VTime) == math.Float64bits(b.VTime) &&
		bytes.Equal(a.Data, b.Data)
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		pe := rng.Intn(1 << 20)
		in := make([]*Message, rng.Intn(20))
		for i := range in {
			in[i] = randMsg(rng)
		}
		enc, err := EncodeEnvelope(pe, in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		gotPE, out, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gotPE != pe || len(out) != len(in) {
			t.Fatalf("round trip: pe %d→%d, count %d→%d", pe, gotPE, len(in), len(out))
		}
		for i := range in {
			if !msgEqual(in[i], out[i]) {
				t.Fatalf("trial %d message %d differs: %+v vs %+v", trial, i, in[i], out[i])
			}
		}
	}
}

// TestWireHostile feeds forged images through the decoder: every
// length prefix must be validated against the bytes remaining before
// allocation, so each case errors cleanly.
func TestWireHostile(t *testing.T) {
	good, err := EncodeEnvelope(3, []*Message{{To: 7, From: 1, Tag: 2, Data: []byte("abcdefgh")}})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"header":    good[:6],
	}
	// Forge a huge message count with no bytes behind it.
	forged := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(forged[4:], 1<<30)
	cases["forged count"] = forged
	// Forge a huge payload length inside the first message.
	forged2 := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(forged2[8+8*8:], 1<<31)
	cases["forged data len"] = forged2
	// Trailing garbage after a valid envelope.
	cases["trailing"] = append(append([]byte(nil), good...), 0xde, 0xad)

	for name, img := range cases {
		if _, _, err := DecodeEnvelope(img); err == nil {
			t.Errorf("%s: decoder accepted hostile image (%d bytes)", name, len(img))
		}
	}
}

// FuzzWireEnvelope: arbitrary bytes must never crash or over-allocate
// the decoder, and anything that decodes must re-encode to an image
// that decodes identically.
func FuzzWireEnvelope(f *testing.F) {
	seed, _ := EncodeEnvelope(1, []*Message{
		{To: 5, From: 6, Tag: -1, Hops: 2, SendTime: 1.5, Arrival: 2.5, VTime: 3.5, Data: []byte("hi")},
	})
	f.Add(seed)
	empty, _ := EncodeEnvelope(0, nil)
	f.Add(empty)
	f.Add([]byte{1, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		pe, msgs, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		enc, err := EncodeEnvelope(pe, msgs)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v", err)
		}
		pe2, msgs2, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if pe2 != pe || len(msgs2) != len(msgs) {
			t.Fatalf("round trip changed envelope: pe %d→%d count %d→%d", pe, pe2, len(msgs), len(msgs2))
		}
		for i := range msgs {
			if !msgEqual(msgs[i], msgs2[i]) {
				t.Fatalf("round trip changed message %d", i)
			}
		}
	})
}
