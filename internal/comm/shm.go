// ShmTransport: the shared-memory fabric for co-located workers. The
// PR 9 socket transport made the Machine shard across OS processes,
// but priced every cross-worker Send at a writev + read pair — a
// ~120x tax over the in-process path. Processes on one host do not
// need the kernel to move bytes between them: this backend maps one
// file per ordered worker pair (created at rendezvous by
// CreateShmMesh, before any worker starts) and runs a lock-free
// single-producer/single-consumer byte ring in each, so a Deliver is
// an envelope encode plus a memcpy into the peer's ring, and a
// receive is a memcpy out. Framing and codec are exactly the socket
// wire's — `u32 len | u8 type | body` around the PUP envelope image —
// so everything above the fabric (shard protocol, equivalence suites)
// runs unchanged.
//
// Ring layout (one mmap'd file, header page + data):
//
//	off   0  u64 magic
//	off   8  u64 capacity        (power of two, data bytes)
//	off  64  u64 head            (reader cursor, absolute)
//	off 128  u64 tail            (writer cursor, absolute)
//	off 192  u32 wclosed         (writer: no more frames)
//	off 224  u32 rclosed         (reader: detached, stop writing)
//	off 256  data[capacity]
//
// head and tail are absolute byte counters (wrap = cursor &
// (capacity-1)), each on its own cache line, each written by exactly
// one side and read by the other through atomics — the classic SPSC
// ring, no cross-process locks anywhere. A frame is published by one
// release-store of tail after its bytes are in place, so the reader
// only ever observes whole frames; senders within one process
// serialize on a local mutex per ring (the SPSC "single producer" is
// the process, not a goroutine).
//
// Wakeup is futex-free spin-then-park, in three rungs: an empty-ring
// reader first yields the Go scheduler for a short burst (frames
// already in flight land here), then surrenders its kernel timeslice
// with sched_yield — co-located workers share cores, and the peer
// process needs this one to produce the next frame — and only after
// ~a millisecond of emptiness parks in timer sleeps. Wakes/Parks in
// SocketStats count the sleep transitions, and a parked reader's wake
// latency is bounded by one nap — no descriptor, no syscall on the
// send side at all.
//
// Teardown follows the socket transport's Retire-before-Close
// contract. Close marks every outbound ring wclosed *before* waiting
// for the local readers, so two workers closing concurrently unblock
// each other: a reader exits once its inbound ring is closed and
// drained (or its own transport's Close is underway). Ring faults
// after Retire are teardown noise; before it they panic, same hard
// failure policy as the socket fabric.
package comm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

const (
	shmMagic   uint64 = 0x6d6967666c6f7731 // "migflow1"
	shmHdrSize        = 256
	shmOffHead        = 64
	shmOffTail        = 128
	shmOffWCl         = 192
	shmOffRCl         = 224

	// shmMinRing is the smallest usable ring; a frame must fit whole.
	shmMinRing = 4096

	// DefaultShmRingBytes is the per-pair ring size CreateShmMesh uses
	// when not told otherwise. The shard workloads' frontiers are well
	// under 1 MiB; 4 MiB keeps even paper-scale BigSim step blobs a
	// single-publish affair.
	DefaultShmRingBytes = 4 << 20

	// Spin-then-park tuning, three rungs per empty poll streak.
	// Rung 1: shmSpinYields runtime.Gosched calls — cheap (~150ns),
	// catches frames already in flight from another local goroutine's
	// perspective. Rung 2: shmYieldSpins sched_yield calls — when the
	// reader is the only runnable goroutine, Gosched returns instantly
	// and the reader would busy-burn its whole OS quantum, starving
	// the co-located peer process that is producing the very frame it
	// waits for; sched_yield (~340ns, not a futex) hands the core to
	// that peer while keeping wake latency at one scheduling round.
	// Rung 3: timer sleeps — Linux timer granularity makes any
	// sub-millisecond request sleep ~1ms regardless, so the nap is an
	// honest millisecond and is entered only after the yield phase has
	// kept the ring warm for over a millisecond of emptiness; a truly
	// idle reader then costs ~0.1% of a core.
	shmSpinYields = 64
	shmYieldSpins = 4096
	shmParkNap    = time.Millisecond
)

// OSYield surrenders the rest of this thread's kernel timeslice via
// sched_yield, then rotates the local run queue too. runtime.Gosched
// alone only rotates goroutines within this process — when a spinner
// is the only runnable goroutine it returns instantly and the spin
// burns the whole OS quantum a co-located peer process needs; the
// OS yield alone would conversely starve same-process goroutines
// (the in-process harnesses run both workers in one runtime). Both
// together cost ~500ns and give everyone else a turn. Any busy-wait
// that can face a co-located process on the other end of the fabric
// (ring readers here, the shard migration driver) should use this
// instead of bare Gosched.
func OSYield() {
	syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
	runtime.Gosched()
}

// shmRing is one mapped SPSC ring (either direction of a pair).
type shmRing struct {
	f        *os.File
	mem      []byte
	data     []byte
	capacity uint64
	head     *atomic.Uint64
	tail     *atomic.Uint64
	wclosed  *atomic.Uint32
	rclosed  *atomic.Uint32
}

// ShmDir returns the directory ring files should live in: /dev/shm
// when it is a writable tmpfs (Linux), else the system temp dir.
// This matters more than it looks: a MAP_SHARED mapping of a
// disk-backed file (ext4 /tmp in most containers) takes a
// write-protect fault through the filesystem's writeback machinery
// every time a clean page is re-dirtied, which turns the ring's
// memcpy publish into tens of microseconds per frame. tmpfs pages
// are page cache with no writeback — the ring then costs what shared
// memory should.
func ShmDir() string {
	const devShm = "/dev/shm"
	if st, err := os.Stat(devShm); err == nil && st.IsDir() {
		if f, err := os.CreateTemp(devShm, "migflow-probe-*"); err == nil {
			f.Close()
			os.Remove(f.Name())
			return devShm
		}
	}
	return os.TempDir()
}

// ShmRingPath names the ring file carrying frames from worker `from`
// to worker `to` under the mesh directory.
func ShmRingPath(dir string, from, to int) string {
	return filepath.Join(dir, fmt.Sprintf("ring-%d-%d.shm", from, to))
}

// CreateShmMesh pre-creates every ordered-pair ring file for a
// workers-wide mesh under dir. The parent calls this before spawning
// workers, so no worker ever races file creation; each worker then
// opens its rings with NewShmTransport. ringBytes is the per-ring
// data capacity (0 = DefaultShmRingBytes; must be a power of two ≥
// shmMinRing).
func CreateShmMesh(dir string, workers, ringBytes int) error {
	if ringBytes == 0 {
		ringBytes = DefaultShmRingBytes
	}
	if ringBytes < shmMinRing || ringBytes&(ringBytes-1) != 0 {
		return fmt.Errorf("comm: shm ring size %d must be a power of two ≥ %d", ringBytes, shmMinRing)
	}
	for i := 0; i < workers; i++ {
		for j := 0; j < workers; j++ {
			if i == j {
				continue
			}
			if err := createShmRing(ShmRingPath(dir, i, j), ringBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

func createShmRing(path string, capacity int) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("comm: creating shm ring: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(shmHdrSize + capacity)); err != nil {
		return fmt.Errorf("comm: sizing shm ring %s: %w", path, err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], shmMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(capacity))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("comm: initializing shm ring %s: %w", path, err)
	}
	return nil
}

// openShmRing maps an existing ring file and validates its header.
func openShmRing(path string) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("comm: opening shm ring: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < shmHdrSize+shmMinRing || size > shmHdrSize+(8<<30) {
		f.Close()
		return nil, fmt.Errorf("comm: shm ring %s has implausible size %d", path, size)
	}
	mem, err := mmapShared(f, int(size))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("comm: mapping shm ring %s: %w", path, err)
	}
	r := &shmRing{
		f:       f,
		mem:     mem,
		data:    mem[shmHdrSize:],
		head:    (*atomic.Uint64)(unsafe.Pointer(&mem[shmOffHead])),
		tail:    (*atomic.Uint64)(unsafe.Pointer(&mem[shmOffTail])),
		wclosed: (*atomic.Uint32)(unsafe.Pointer(&mem[shmOffWCl])),
		rclosed: (*atomic.Uint32)(unsafe.Pointer(&mem[shmOffRCl])),
	}
	magic := binary.LittleEndian.Uint64(mem[0:])
	r.capacity = binary.LittleEndian.Uint64(mem[8:])
	if magic != shmMagic || r.capacity != uint64(len(r.data)) ||
		r.capacity&(r.capacity-1) != 0 || r.capacity < shmMinRing {
		r.close()
		return nil, fmt.Errorf("comm: %s is not a valid shm ring (magic %#x, capacity %d, file %d)", path, magic, r.capacity, size)
	}
	return r, nil
}

func (r *shmRing) close() {
	if r.mem != nil {
		munmapShared(r.mem)
		r.mem, r.data = nil, nil
	}
	r.f.Close()
}

// readable is the published byte count awaiting the reader.
func (r *shmRing) readable() uint64 { return r.tail.Load() - r.head.Load() }

// tryPush copies frame into the ring and publishes it with one
// release-store of tail; false when the ring lacks space. Caller is
// the single producer (holds the transport's per-ring mutex).
func (r *shmRing) tryPush(frame []byte) bool {
	need := uint64(len(frame))
	tail := r.tail.Load()
	if r.capacity-(tail-r.head.Load()) < need {
		return false
	}
	off := tail & (r.capacity - 1)
	n1 := copy(r.data[off:], frame)
	copy(r.data, frame[n1:]) // wrap-around remainder (no-op when it fit)
	r.tail.Store(tail + need)
	return true
}

// readFrame pops the next whole frame into a recycled buffer (caller
// putBufs it after dispatch). Returns ok=false with nil error when
// the ring is empty. A corrupt image — torn header, zero or oversized
// length claim, or a length exceeding what was published — is an
// error: the protocol only ever publishes whole frames, so these
// cannot happen short of a scribbled mapping, and the hostile-input
// tests drive exactly those images through here.
func (r *shmRing) readFrame() (buf []byte, ok bool, err error) {
	avail := r.readable()
	if avail == 0 {
		return nil, false, nil
	}
	if avail < 4 {
		return nil, false, fmt.Errorf("comm: torn shm frame header: %d bytes published", avail)
	}
	head := r.head.Load()
	var hdr [4]byte
	r.copyOut(hdr[:], head)
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || uint64(n) > r.capacity-4 || n > maxFrameLen {
		return nil, false, fmt.Errorf("comm: shm frame length %d out of range (ring %d)", n, r.capacity)
	}
	if uint64(4)+uint64(n) > avail {
		return nil, false, fmt.Errorf("comm: torn shm frame: claims %d bytes with %d published", n, avail-4)
	}
	buf = getBuf(int(n))[:n]
	r.copyOut(buf, head+4)
	r.head.Store(head + 4 + uint64(n))
	return buf, true, nil
}

// copyOut copies len(dst) ring bytes starting at absolute position
// pos, handling wrap-around.
func (r *shmRing) copyOut(dst []byte, pos uint64) {
	off := pos & (r.capacity - 1)
	n1 := copy(dst, r.data[off:])
	copy(dst[n1:], r.data)
}

// ShmTransport implements ShardTransport over the mapped ring mesh.
type ShmTransport struct {
	self    int
	workers int
	owner   func(pe int) int
	network *Network
	ctrl    ControlHandler

	out   []*shmRing // out[w]: self → w (nil for self)
	outMu []sync.Mutex
	in    []*shmRing // in[w]: w → self

	done    chan struct{}
	closed  atomic.Bool
	retired atomic.Bool
	wgR     sync.WaitGroup

	framesSent   atomic.Uint64
	bytesWritten atomic.Uint64
	framesRecv   atomic.Uint64
	bytesRead    atomic.Uint64
	wakes        atomic.Uint64
	parks        atomic.Uint64
}

// NewShmTransport opens worker self's half of the ring mesh under dir
// (created beforehand by CreateShmMesh). owner maps a global PE index
// to its owning worker, exactly as for NewSocketTransport; it may be
// nil for a control-only transport that never Delivers envelopes.
func NewShmTransport(self, workers int, owner func(pe int) int, dir string) (*ShmTransport, error) {
	if self < 0 || self >= workers || workers < 2 {
		return nil, fmt.Errorf("comm: NewShmTransport: worker %d of %d", self, workers)
	}
	t := &ShmTransport{
		self: self, workers: workers, owner: owner,
		out: make([]*shmRing, workers), outMu: make([]sync.Mutex, workers),
		in:   make([]*shmRing, workers),
		done: make(chan struct{}),
	}
	fail := func(err error) (*ShmTransport, error) {
		for _, r := range t.out {
			if r != nil {
				r.close()
			}
		}
		for _, r := range t.in {
			if r != nil {
				r.close()
			}
		}
		return nil, err
	}
	for w := 0; w < workers; w++ {
		if w == t.self {
			continue
		}
		var err error
		if t.out[w], err = openShmRing(ShmRingPath(dir, self, w)); err != nil {
			return fail(err)
		}
		if t.in[w], err = openShmRing(ShmRingPath(dir, w, self)); err != nil {
			return fail(err)
		}
	}
	return t, nil
}

// SetControlHandler installs the control-frame callback (before
// Start). Same borrow-only payload rule as the socket transport.
func (t *ShmTransport) SetControlHandler(h ControlHandler) { t.ctrl = h }

// Attach shards n onto this transport: PEs [peLo, peHi) are local.
func (t *ShmTransport) Attach(n *Network, peLo, peHi int) error {
	if err := n.SetTransport(t, peLo, peHi); err != nil {
		return err
	}
	t.network = n
	return nil
}

// Start launches one reader goroutine per inbound ring. Unlike the
// socket transport, a nil network is allowed: a control-only
// ShmTransport (no Attach) carries SendControl traffic — the sharded
// BigSim step exchange uses one — and an envelope frame arriving on
// it is a protocol error.
func (t *ShmTransport) Start() error {
	for w, r := range t.in {
		if r == nil {
			continue
		}
		t.wgR.Add(1)
		go t.readLoop(w, r)
	}
	return nil
}

// Deliver implements Transport: encode one envelope frame into a
// recycled buffer and publish it into the destination worker's ring.
func (t *ShmTransport) Deliver(pe int, msgs []*Message) error {
	w := t.owner(pe)
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: Deliver(%d): PE maps to worker %d (self %d)", pe, w, t.self)
	}
	frame, err := envelopeFrame(pe, msgs)
	if err != nil {
		return err
	}
	err = t.writeFrame(w, frame)
	putBuf(frame)
	return err
}

// SendControl publishes a control frame for peer worker w. FIFO with
// any envelopes previously published for w (same ring).
func (t *ShmTransport) SendControl(w int, kind uint32, payload []byte) error {
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: SendControl(%d): invalid peer", w)
	}
	frame, err := controlFrame(t.self, kind, payload)
	if err != nil {
		return err
	}
	err = t.writeFrame(w, frame)
	putBuf(frame)
	return err
}

// Broadcast sends a control frame to every peer.
func (t *ShmTransport) Broadcast(kind uint32, payload []byte) error {
	for w := range t.out {
		if w == t.self {
			continue
		}
		if err := t.SendControl(w, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame publishes one frame into the ring to w, waiting out a
// full ring with the same yield-then-nap backoff the readers use. The
// per-ring mutex both serializes local senders (SPSC's single
// producer) and orders against Close, which acquires it before
// marking the ring closed: a frame accepted here is published before
// the peer can observe wclosed.
func (t *ShmTransport) writeFrame(w int, frame []byte) error {
	r := t.out[w]
	if uint64(len(frame)) > r.capacity {
		return fmt.Errorf("comm: frame of %d bytes exceeds shm ring capacity %d", len(frame), r.capacity)
	}
	t.outMu[w].Lock()
	defer t.outMu[w].Unlock()
	if t.closed.Load() {
		return fmt.Errorf("comm: shm transport closed")
	}
	for idle := 0; !r.tryPush(frame); idle++ {
		if r.rclosed.Load() != 0 {
			return fmt.Errorf("comm: shm ring to worker %d: reader detached", w)
		}
		select {
		case <-t.done:
			return fmt.Errorf("comm: shm transport closed")
		default:
		}
		switch {
		case idle < shmSpinYields:
			runtime.Gosched()
		case idle < shmSpinYields+shmYieldSpins:
			// A full ring means the reader's process is behind;
			// give it the core so it can drain.
			OSYield()
		default:
			time.Sleep(shmParkNap)
		}
	}
	t.framesSent.Add(1)
	t.bytesWritten.Add(uint64(len(frame)))
	return nil
}

// readLoop drains one inbound ring: spin-then-park when empty, pop
// and dispatch otherwise. Exits when the peer closed the ring and it
// is drained, or when the local transport is closing.
func (t *ShmTransport) readLoop(w int, r *shmRing) {
	defer t.wgR.Done()
	defer r.rclosed.Store(1)
	idle := 0
	for {
		buf, ok, err := r.readFrame()
		if err != nil {
			t.ringFailed(w, err)
			return
		}
		if !ok {
			if r.wclosed.Load() != 0 {
				if r.readable() == 0 {
					return // peer closed and drained
				}
				continue // frames published before the close: drain them
			}
			select {
			case <-t.done:
				return
			default:
			}
			idle++
			switch {
			case idle <= shmSpinYields:
				runtime.Gosched()
			case idle <= shmSpinYields+shmYieldSpins:
				OSYield()
			default:
				if idle == shmSpinYields+shmYieldSpins+1 {
					t.parks.Add(1)
				}
				time.Sleep(shmParkNap)
			}
			continue
		}
		if idle > shmSpinYields+shmYieldSpins {
			t.wakes.Add(1)
		}
		idle = 0
		t.framesRecv.Add(1)
		t.bytesRead.Add(uint64(4 + len(buf)))
		if err := dispatchFrame(t.network, t.ctrl, buf); err != nil {
			t.ringFailed(w, err)
			return
		}
		putBuf(buf)
	}
}

// ringFailed enforces the hard-error policy, mirroring the socket
// transport's linkFailed.
func (t *ShmTransport) ringFailed(w int, err error) {
	if t.closed.Load() || t.retired.Load() {
		return // expected teardown noise
	}
	panic(fmt.Sprintf("comm: shm transport worker %d: ring with worker %d failed: %v", t.self, w, err))
}

// Retire marks the run complete: ring faults after this point are
// expected teardown noise. Call once the termination barrier has been
// crossed, before Close.
func (t *ShmTransport) Retire() { t.retired.Store(true) }

// Close implements Transport: mark every outbound ring closed (under
// its mutex, so in-flight writes finish publishing first), stop the
// readers, then unmap. Outbound rings close before the reader wait so
// two workers closing concurrently cannot deadlock: each side's
// readers see the peer's wclosed (or their own done) and exit.
func (t *ShmTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	for w, r := range t.out {
		if r == nil {
			continue
		}
		t.outMu[w].Lock()
		r.wclosed.Store(1)
		t.outMu[w].Unlock()
	}
	t.wgR.Wait()
	t.retired.Store(true)
	for _, r := range t.out {
		if r != nil {
			r.close()
		}
	}
	for _, r := range t.in {
		if r != nil {
			r.close()
		}
	}
	return nil
}

// Backlog reports bytes published to peers but not yet consumed — the
// adaptive aggregation backpressure signal (Backlogger).
func (t *ShmTransport) Backlog() int {
	var n uint64
	for _, r := range t.out {
		if r != nil {
			n += r.readable()
		}
	}
	return int(n)
}

// SocketStats returns the ring counters in the shared multi-process
// stats shape. WriteSyscalls stays zero — the whole point — and every
// frame is its own publish, so WriteBatches == FramesSent.
func (t *ShmTransport) SocketStats() SocketStats {
	fs := t.framesSent.Load()
	return SocketStats{
		WriteBatches: fs,
		FramesSent:   fs,
		BytesWritten: t.bytesWritten.Load(),
		FramesRecv:   t.framesRecv.Load(),
		BytesRead:    t.bytesRead.Load(),
		Wakes:        t.wakes.Load(),
		Parks:        t.parks.Load(),
	}
}
