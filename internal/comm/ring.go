package comm

// msgRing is a growable FIFO of messages backed by a power-of-two
// ring buffer. The previous inbox was a plain slice popped with
// `inbox = inbox[1:]`, which strands consumed slots in the backing
// array (append can never reuse them) and so re-allocates under any
// sustained traffic; the ring reuses its buffer indefinitely and only
// grows when the queue depth itself grows.
type msgRing struct {
	buf  []*Message
	head int // index of oldest element
	n    int // number of elements
}

func (r *msgRing) len() int { return r.n }

func (r *msgRing) push(m *Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

func (r *msgRing) pop() *Message {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil // release for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return m
}

func (r *msgRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	next := make([]*Message, size)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}
