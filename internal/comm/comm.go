// Package comm is the location-independent communication subsystem of
// §3.1.2: migratable entities (threads, chares, AMPI ranks) send to
// *names*, not processors. A distributed directory with per-PE
// location caches routes messages; when an entity migrates, stale
// cache entries cause one extra forwarding hop, after which the
// sender's cache is corrected — so "object or thread migration with
// ongoing point-to-point communication" works at any time.
//
// Delivery is in-order per (sender PE, destination entity) pair and
// carries virtual timestamps from a latency model, so the simulated
// machine's communication costs appear on the virtual clock.
//
// The send/deliver path is the hottest in the runtime (every message
// of every benchmark crosses it), so it is built to scale with PE
// count instead of serializing on one lock:
//
//   - the location directory is striped into shards, and each shard
//     is a copy-on-write map: Locate is one atomic load plus a map
//     probe, with no lock; Register/MigrateEntity/Deregister copy the
//     (small) shard under a per-shard mutex;
//   - per-endpoint location caches are copy-on-write too, so a send
//     reads its cache without locking and only writes it when the
//     entry actually changes (first contact or after a migration);
//   - message counters are atomics, not a mutex-guarded struct;
//   - each inbox is a growable power-of-two ring buffer, so Poll does
//     not shift (and re-allocate) a slice, and the condvar is only
//     broadcast when a Recv is actually parked.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EntityID names a migratable communication endpoint,
// location-independently.
type EntityID uint64

// PinnedEntity is an EntityID bit marking a *directly addressed*
// entity (event-mode AMPI ranks: millions of small state structs in
// dense ID blocks). Sends to one skip the per-endpoint location cache
// entirely — the authoritative lookup Send already performs is the
// final answer — so first contact with each of a million ranks does
// not clone a million-entry cache map per sender. Such entities live
// in range location tables (RegisterRange) where a lookup is O(1)
// array arithmetic, and they migrate through batched MoveRangeBatch
// updates (one epoch bump per LB step), never through the per-entity
// MigrateEntity path — which still refuses them.
const PinnedEntity EntityID = 1 << 63

// Pinned reports whether id carries the PinnedEntity bit.
func (id EntityID) Pinned() bool { return id&PinnedEntity != 0 }

// Message is one network message.
type Message struct {
	To   EntityID
	From EntityID
	Tag  int
	Data []byte

	// SendTime is the sender's virtual clock at Send; Arrival is
	// SendTime plus per-hop latency, set by the network.
	SendTime float64
	Arrival  float64

	// VTime is an application-level virtual timestamp carried
	// unmodified through delivery and forwarding. AMPI's
	// mode-independent predicted-time model stamps the sending rank's
	// virtual time here; it is deliberately separate from SendTime,
	// which belongs to the (mode- and placement-dependent) simulating
	// PE clock.
	VTime float64

	// Hops counts delivery attempts; >1 means forwarding happened.
	Hops int

	// Seq numbers the sender→receiver payload stream, starting at 1;
	// zero means unsequenced. Sharded AMPI stamps it so a receiver can
	// restore send order when a message routed straight to a rank's
	// new owner overtakes an older one still chasing through the old
	// owner's Forward path — per-link FIFO cannot order two routes.
	Seq uint64
}

// LatencyModel charges alpha + beta*bytes nanoseconds per hop — the
// standard postal model.
type LatencyModel struct {
	Alpha       float64 // ns per message
	BetaPerByte float64 // ns per byte
}

// Cost returns the virtual nanoseconds one hop of n bytes takes.
func (m LatencyModel) Cost(n int) float64 { return m.Alpha + m.BetaPerByte*float64(n) }

// DefaultLatency approximates the paper's Myrinet-class cluster
// interconnect: ~10 µs latency, ~4 ns/byte (≈250 MB/s).
var DefaultLatency = LatencyModel{Alpha: 10_000, BetaPerByte: 4}

// locShards stripes the directory; must be a power of two. Entity IDs
// are dense (sequential thread IDs, rank numbers), so masking the low
// bits spreads them evenly.
const locShards = 64

// locShard is one directory stripe: a copy-on-write map. Readers load
// the current map with one atomic; writers clone it under the shard
// mutex. Directory updates (registration, migration) are orders of
// magnitude rarer than lookups, which makes the clone cost a good
// trade for lock-free reads.
type locShard struct {
	mu sync.Mutex
	m  atomic.Pointer[map[EntityID]int]
}

// rangeLoc is one dense ID block's location table: entity base+i
// lives on PE pes[i]. Lookups are array arithmetic (no map, no lock);
// entries are atomics so a batched LB-step update (MoveRangeBatch)
// publishes new locations without cloning a million-entry structure —
// the clone-per-batch COW discipline of the shard maps would move
// megabytes per deregistration batch at event-job scale. A negative
// entry is a tombstone (deregistered entity). epoch counts completed
// move batches; receivers use it as the "has anything ever moved"
// fast check before comparing per-entity locations.
type rangeLoc struct {
	base  EntityID
	pes   []atomic.Int32
	live  atomic.Int64
	epoch atomic.Uint64
}

func (rl *rangeLoc) contains(id EntityID) bool {
	return id >= rl.base && id < rl.base+EntityID(len(rl.pes))
}

// RangeMove is one entry of a batched range-table update: entity
// base+Index moves to PE To.
type RangeMove struct {
	Index int
	To    int
}

// Network connects NumPEs endpoints through a directory.
type Network struct {
	lat       LatencyModel
	endpoints []*Endpoint
	shards    [locShards]locShard

	// ranges holds the dense range location tables (COW slice of
	// pointers: the slice is rewritten under rangesMu when a table is
	// added or removed — rare — while the tables' entries themselves
	// mutate in place through atomics).
	rangesMu sync.Mutex
	ranges   atomic.Pointer[[]*rangeLoc]

	// stats
	sent     atomic.Uint64
	forwards atomic.Uint64
	bytes    atomic.Uint64

	// streaming-aggregation stats (see aggregate.go)
	envelopes   atomic.Uint64
	aggPayloads atomic.Uint64

	// topoHops counts logical network hops charged by topology-aware
	// collective trees (see ampi's Topology): the layer above reports
	// each tree edge's hop distance here so harnesses can compare
	// rank-order vs topology-aware spanning trees on the same run.
	topoHops atomic.Uint64

	// Sharding (see transport.go): xport is nil on the default
	// in-process backend. When set, endpoints in [peLo, peHi) are
	// local and everything else crosses the transport; the remote*
	// counters tally that wire traffic.
	xport           Transport
	peLo, peHi      int
	remoteEnvelopes atomic.Uint64
	remotePayloads  atomic.Uint64
	remoteBytes     atomic.Uint64

	// flowIDs allocates dense pinned-entity blocks (AllocFlowIDs).
	flowIDs atomic.Uint64
}

// AllocFlowIDs reserves a contiguous block of n pinned entity
// identifiers from THIS network's ID space and returns the first.
// Per-network (not process-global) allocation matters for sharded
// runs: every worker process builds its machine and jobs in the same
// order, so identical construction yields identical entity bases —
// the invariant that makes each worker's directory authoritative for
// traffic arriving over the transport. Only event-mode flows draw
// from this space; ULT thread entities use raw converse thread IDs,
// which never carry the PinnedEntity bit, so the two can't collide.
func (n *Network) AllocFlowIDs(count int) EntityID {
	if count < 1 {
		panic(fmt.Sprintf("comm: AllocFlowIDs(%d)", count))
	}
	return PinnedEntity | EntityID(n.flowIDs.Add(uint64(count))-uint64(count)+1)
}

// NewNetwork builds a network of numPEs endpoints.
func NewNetwork(numPEs int, lat LatencyModel) *Network {
	n := &Network{lat: lat}
	for pe := 0; pe < numPEs; pe++ {
		n.endpoints = append(n.endpoints, &Endpoint{net: n, pe: pe})
	}
	for _, e := range n.endpoints {
		e.cond = sync.NewCond(&e.mu)
	}
	return n
}

// NumPEs returns the endpoint count.
func (n *Network) NumPEs() int { return len(n.endpoints) }

// Endpoint returns PE pe's endpoint.
func (n *Network) Endpoint(pe int) *Endpoint { return n.endpoints[pe] }

// Latency returns the network's latency model.
func (n *Network) Latency() LatencyModel { return n.lat }

func (n *Network) shard(id EntityID) *locShard {
	return &n.shards[uint64(id)&(locShards-1)]
}

// Register places entity id on PE pe. Registering an existing entity
// is an error; use MigrateEntity to move it.
func (n *Network) Register(id EntityID, pe int) error {
	if pe < 0 || pe >= len(n.endpoints) {
		return fmt.Errorf("comm: Register(%d): PE %d out of range", id, pe)
	}
	s := n.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.m.Load(); m != nil {
		if old, ok := (*m)[id]; ok {
			return fmt.Errorf("comm: entity %d already registered on PE %d", id, old)
		}
	}
	s.store(id, pe)
	return nil
}

// Deregister removes an entity (exit).
func (n *Network) Deregister(id EntityID) {
	s := n.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.m.Load()
	if old == nil {
		return
	}
	if _, ok := (*old)[id]; !ok {
		return
	}
	next := make(map[EntityID]int, len(*old))
	for k, v := range *old {
		if k != id {
			next[k] = v
		}
	}
	s.m.Store(&next)
}

// RegisterBatch places entities base..base+n-1 on pes[0..n-1] (one PE
// per entity) in one pass: each directory shard is cloned at most
// once, instead of once per entity. Registering a million event-mode
// ranks one by one would clone ever-growing shard maps quadratically;
// the batch is linear. Any already-registered id fails the whole
// batch before anything is stored.
func (n *Network) RegisterBatch(base EntityID, pes []int) error {
	for i, pe := range pes {
		if pe < 0 || pe >= len(n.endpoints) {
			return fmt.Errorf("comm: RegisterBatch(%d+%d): PE %d out of range", base, i, pe)
		}
	}
	// Lock shards in index order (every Register/Deregister path takes
	// at most one shard lock, so ordering only matters batch-vs-batch).
	for si := range n.shards {
		n.shards[si].mu.Lock()
	}
	defer func() {
		for si := range n.shards {
			n.shards[si].mu.Unlock()
		}
	}()
	for i := range pes {
		id := base + EntityID(i)
		if m := n.shard(id).m.Load(); m != nil {
			if old, ok := (*m)[id]; ok {
				return fmt.Errorf("comm: entity %d already registered on PE %d", id, old)
			}
		}
	}
	// Clone each touched shard once, sized for its share of the batch.
	var adds [locShards]int
	for i := range pes {
		adds[uint64(base+EntityID(i))&(locShards-1)]++
	}
	var next [locShards]map[EntityID]int
	for si := range n.shards {
		if adds[si] == 0 {
			continue
		}
		old := n.shards[si].m.Load()
		sz := adds[si]
		if old != nil {
			sz += len(*old)
		}
		m := make(map[EntityID]int, sz)
		if old != nil {
			for k, v := range *old {
				m[k] = v
			}
		}
		next[si] = m
	}
	for i, pe := range pes {
		id := base + EntityID(i)
		next[uint64(id)&(locShards-1)][id] = pe
	}
	for si := range n.shards {
		if next[si] == nil {
			continue
		}
		m := next[si]
		n.shards[si].m.Store(&m)
	}
	return nil
}

// DeregisterBatch removes a set of entities, cloning each directory
// shard at most once (the exit path of a finished event-mode job).
// Ids living in range tables are tombstoned in place — no clone at
// all. Unregistered ids are ignored.
func (n *Network) DeregisterBatch(ids []EntityID) {
	if len(ids) == 0 {
		return
	}
	if n.ranges.Load() != nil {
		inShards := ids[:0:0]
		for _, id := range ids {
			if rl := n.rangeOf(id); rl != nil {
				i := int(id - rl.base)
				if rl.pes[i].Load() >= 0 {
					rl.pes[i].Store(-1)
					rl.live.Add(-1)
				}
				continue
			}
			inShards = append(inShards, id)
		}
		if len(inShards) == 0 {
			return
		}
		ids = inShards
	}
	for si := range n.shards {
		n.shards[si].mu.Lock()
	}
	defer func() {
		for si := range n.shards {
			n.shards[si].mu.Unlock()
		}
	}()
	// Group ids by shard so untouched shards are not cloned.
	var drop [locShards][]EntityID
	for _, id := range ids {
		si := uint64(id) & (locShards - 1)
		drop[si] = append(drop[si], id)
	}
	for si := range n.shards {
		if len(drop[si]) == 0 {
			continue
		}
		old := n.shards[si].m.Load()
		if old == nil {
			continue
		}
		m := make(map[EntityID]int, len(*old))
		for k, v := range *old {
			m[k] = v
		}
		for _, id := range drop[si] {
			delete(m, id)
		}
		n.shards[si].m.Store(&m)
	}
}

// NumEntities returns how many entities are currently registered
// (shard maps plus live range-table entries) — a footprint
// diagnostic: a completed job should leave the directory at its
// pre-job size.
func (n *Network) NumEntities() int {
	total := 0
	for si := range n.shards {
		if m := n.shards[si].m.Load(); m != nil {
			total += len(*m)
		}
	}
	if rs := n.ranges.Load(); rs != nil {
		for _, rl := range *rs {
			total += int(rl.live.Load())
		}
	}
	return total
}

// rangeOf returns the range table containing id, or nil. One atomic
// load when no tables exist (every non-event workload).
func (n *Network) rangeOf(id EntityID) *rangeLoc {
	if rs := n.ranges.Load(); rs != nil {
		for _, rl := range *rs {
			if rl.contains(id) {
				return rl
			}
		}
	}
	return nil
}

// RegisterRange places the dense entity block base..base+len(pes)-1
// in a new range location table: entity base+i lives on PE pes[i].
// Compared with RegisterBatch's shard maps, a range table costs 4
// bytes per entity, locates with array arithmetic instead of a map
// probe, and — the point — supports batched location updates, so
// range entities are migratable. The block must not overlap an
// existing range; ids also present in the shard maps would shadow the
// range (shards are consulted first) and are the caller's mistake.
func (n *Network) RegisterRange(base EntityID, pes []int) error {
	if len(pes) == 0 {
		return fmt.Errorf("comm: RegisterRange(%d): empty range", base)
	}
	for i, pe := range pes {
		if pe < 0 || pe >= len(n.endpoints) {
			return fmt.Errorf("comm: RegisterRange(%d+%d): PE %d out of range", base, i, pe)
		}
	}
	rl := &rangeLoc{base: base, pes: make([]atomic.Int32, len(pes))}
	for i, pe := range pes {
		rl.pes[i].Store(int32(pe))
	}
	rl.live.Store(int64(len(pes)))
	n.rangesMu.Lock()
	defer n.rangesMu.Unlock()
	var next []*rangeLoc
	if old := n.ranges.Load(); old != nil {
		for _, r := range *old {
			if base < r.base+EntityID(len(r.pes)) && r.base < base+EntityID(len(pes)) {
				return fmt.Errorf("comm: RegisterRange(%d, %d entities) overlaps existing range at %d", base, len(pes), r.base)
			}
		}
		next = append(next, *old...)
	}
	next = append(next, rl)
	n.ranges.Store(&next)
	return nil
}

// MoveRangeBatch applies one load-balancing step's moves to a range
// table: entity base+Index now lives on PE To. The whole batch is one
// epoch — per-entity atomic stores followed by a single epoch bump —
// so a million-rank LB step updates the directory in one linear pass
// with no allocation, and unmoved entities keep their O(1) lookups.
// Senders that routed a message before its entry was updated cost one
// forwarding hop (Endpoint.Forward), exactly like a stale cache.
func (n *Network) MoveRangeBatch(base EntityID, moves []RangeMove) error {
	rl := n.rangeOf(base)
	if rl == nil {
		return fmt.Errorf("comm: MoveRangeBatch(%d): no such range", base)
	}
	for _, mv := range moves {
		if mv.Index < 0 || mv.Index >= len(rl.pes) {
			return fmt.Errorf("comm: MoveRangeBatch(%d): index %d outside range of %d", base, mv.Index, len(rl.pes))
		}
		if mv.To < 0 || mv.To >= len(n.endpoints) {
			return fmt.Errorf("comm: MoveRangeBatch(%d): PE %d out of range", base, mv.To)
		}
		if rl.pes[mv.Index].Load() < 0 {
			return fmt.Errorf("comm: MoveRangeBatch(%d): entity %d is deregistered", base, mv.Index)
		}
	}
	for _, mv := range moves {
		rl.pes[mv.Index].Store(int32(mv.To))
	}
	rl.epoch.Add(1)
	return nil
}

// RangeEpoch returns how many MoveRangeBatch updates the range at
// base has completed (0 for an unknown base: nothing ever moved).
func (n *Network) RangeEpoch(base EntityID) uint64 {
	if rl := n.rangeOf(base); rl != nil {
		return rl.epoch.Load()
	}
	return 0
}

// DeregisterRange removes the whole range table registered at base.
func (n *Network) DeregisterRange(base EntityID) {
	n.rangesMu.Lock()
	defer n.rangesMu.Unlock()
	old := n.ranges.Load()
	if old == nil {
		return
	}
	next := make([]*rangeLoc, 0, len(*old))
	for _, r := range *old {
		if r.base != base {
			next = append(next, r)
		}
	}
	n.ranges.Store(&next)
}

// store clones the shard map with id set to pe. Caller holds s.mu.
func (s *locShard) store(id EntityID, pe int) {
	old := s.m.Load()
	var next map[EntityID]int
	if old == nil {
		next = map[EntityID]int{id: pe}
	} else {
		next = make(map[EntityID]int, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		next[id] = pe
	}
	s.m.Store(&next)
}

// Locate returns the authoritative location of id. It takes no lock:
// one atomic load of the entity's directory shard plus a map probe,
// or — for range-table entities — one atomic table load plus array
// arithmetic.
func (n *Network) Locate(id EntityID) (int, error) {
	if m := n.shard(id).m.Load(); m != nil {
		if pe, ok := (*m)[id]; ok {
			return pe, nil
		}
	}
	if rl := n.rangeOf(id); rl != nil {
		if pe := rl.pes[id-rl.base].Load(); pe >= 0 {
			return int(pe), nil
		}
	}
	return 0, fmt.Errorf("comm: entity %d is not registered", id)
}

// MigrateEntity moves id's authoritative location to PE to. Old cache
// entries at other PEs go stale and are corrected lazily on the next
// forwarded message.
func (n *Network) MigrateEntity(id EntityID, to int) error {
	if to < 0 || to >= len(n.endpoints) {
		return fmt.Errorf("comm: MigrateEntity(%d): PE %d out of range", id, to)
	}
	if id.Pinned() {
		return fmt.Errorf("comm: entity %d is pinned and cannot migrate", id)
	}
	s := n.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m.Load()
	if m == nil {
		return fmt.Errorf("comm: entity %d is not registered", id)
	}
	if _, ok := (*m)[id]; !ok {
		return fmt.Errorf("comm: entity %d is not registered", id)
	}
	s.store(id, to)
	return nil
}

// ChargeTopoHops adds h logical hops to the topology-hop counter.
func (n *Network) ChargeTopoHops(h uint64) { n.topoHops.Add(h) }

// TopoHops returns the total logical hops charged by topology-aware
// collective trees (zero when no topology is configured).
func (n *Network) TopoHops() uint64 { return n.topoHops.Load() }

// Endpoint is one PE's attachment to the network: an inbox plus a
// location cache.
type Endpoint struct {
	net *Network
	pe  int

	// cache is the PE's copy-on-write location cache: reads are one
	// atomic load, and the map is cloned (under cacheMu) only when an
	// entry actually changes — first contact with an entity, or the
	// correction after a forwarding hop.
	cacheMu sync.Mutex
	cache   atomic.Pointer[map[EntityID]int]

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   msgRing
	waiters int
	hook    func() // optional wakeup hook (scheduler integration)

	// agg, when non-nil, is the endpoint's streaming-aggregation
	// state (see aggregate.go). aggMu is held across a whole flush so
	// one sender's envelopes leave in order; it never nests inside mu.
	aggMu sync.Mutex
	agg   *aggregator
}

// PE returns the endpoint's processor index.
func (e *Endpoint) PE() int { return e.pe }

// SetWakeHook registers fn to run (without locks held) whenever a
// message arrives — the converse scheduler uses it to wake its loop.
func (e *Endpoint) SetWakeHook(fn func()) {
	e.mu.Lock()
	e.hook = fn
	e.mu.Unlock()
}

// noteLocation records id→pe in the location cache if the entry is
// new or changed.
func (e *Endpoint) noteLocation(id EntityID, pe int) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	old := e.cache.Load()
	if old != nil {
		if cur, ok := (*old)[id]; ok && cur == pe {
			return
		}
	}
	var next map[EntityID]int
	if old == nil {
		next = map[EntityID]int{id: pe}
	} else {
		next = make(map[EntityID]int, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		next[id] = pe
	}
	e.cache.Store(&next)
}

// Send routes msg from this endpoint's PE toward msg.To, charging one
// hop of latency per delivery attempt. Stale location caches produce
// forwarding hops; the cache self-corrects afterwards.
//
// The cached location decides where the message physically goes
// first; one authoritative directory lookup decides whether that PE
// was the right one. A stale cache therefore costs a forwarding hop
// from the wrong PE to the right one, exactly like the two-Locate
// protocol it replaces, at half the directory traffic.
func (e *Endpoint) Send(msg *Message) error {
	if msg == nil {
		return fmt.Errorf("comm: Send(nil)")
	}
	actual, err := e.net.Locate(msg.To)
	if err != nil {
		return err
	}
	// Stats are counted at entry: every Send call is one send of
	// len(Data) payload bytes, whatever hop count the message already
	// carries (a caller retrying a message must not be invisible).
	e.net.sent.Add(1)
	e.net.bytes.Add(uint64(len(msg.Data)))

	if msg.To.Pinned() {
		// Directly addressed entities: the authoritative range-table
		// lookup above is O(1) and current as of this instant, so skip
		// the location cache on both the read and write side. A
		// million-rank event job neither consults nor grows any sender's
		// cache. If the entity moves while this message is in flight,
		// the receiver's owner check catches it and Forward chases.
		msg.Hops++
		msg.Arrival = msg.SendTime + e.net.lat.Cost(len(msg.Data))
		e.net.deliverTo(actual, msg)
		return nil
	}
	dest, cached := actual, false
	if e.net.xport == nil {
		// Sharded networks skip the per-endpoint cache entirely (read
		// and write): the authoritative answer above is current, and a
		// stale cached PE could belong to another process.
		if m := e.cache.Load(); m != nil {
			if d, ok := (*m)[msg.To]; ok {
				dest, cached = d, true
			}
		}
	}
	msg.Hops++
	msg.Arrival = msg.SendTime + e.net.lat.Cost(len(msg.Data))
	if dest != actual {
		// Stale: the wrong PE received it and forwards. Correct our
		// cache and re-send from the wrong PE, costing another hop.
		e.net.forwards.Add(1)
		e.noteLocation(msg.To, actual)
		msg.SendTime = msg.Arrival // forwarding leaves on arrival
		return e.net.forwardTo(msg, actual)
	}
	if !cached && e.net.xport == nil {
		e.noteLocation(msg.To, actual)
	}
	e.net.deliverTo(dest, msg)
	return nil
}

// forward re-sends a misdelivered message from this PE to the
// authoritative location.
func (e *Endpoint) forward(msg *Message, to int) error {
	return e.net.forwardTo(msg, to)
}

// Forward re-routes a message this PE received for an entity that no
// longer lives here — the receive-side half of migration with
// messages in flight. It costs one forwarding hop (the message leaves
// again at its arrival time) and counts as a forward, not a fresh
// send, so migrated and unmigrated runs of the same program report
// identical sent counts.
func (e *Endpoint) Forward(msg *Message) error {
	actual, err := e.net.Locate(msg.To)
	if err != nil {
		return err
	}
	e.net.forwards.Add(1)
	msg.SendTime = msg.Arrival
	return e.forward(msg, actual)
}

// deliver appends msg to the inbox and wakes any waiter.
func (e *Endpoint) deliver(msg *Message) {
	e.mu.Lock()
	e.inbox.push(msg)
	if e.waiters > 0 {
		e.cond.Broadcast()
	}
	hook := e.hook
	e.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// deliverBatch appends a flushed envelope's payloads to the inbox
// under one lock acquisition — the receive-side half of aggregation's
// wall-clock win (one lock + one wakeup per envelope, not per
// payload).
func (e *Endpoint) deliverBatch(msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	e.mu.Lock()
	for _, m := range msgs {
		e.inbox.push(m)
	}
	if e.waiters > 0 {
		e.cond.Broadcast()
	}
	hook := e.hook
	e.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Poll removes and returns the oldest inbox message, or nil.
func (e *Endpoint) Poll() *Message {
	e.mu.Lock()
	m := e.inbox.pop()
	e.mu.Unlock()
	return m
}

// Recv blocks until a message arrives and returns it.
func (e *Endpoint) Recv() *Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.inbox.len() == 0 {
		e.waiters++
		e.cond.Wait()
		e.waiters--
	}
	return e.inbox.pop()
}

// Pending returns the inbox depth.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inbox.len()
}
