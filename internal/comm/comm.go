// Package comm is the location-independent communication subsystem of
// §3.1.2: migratable entities (threads, chares, AMPI ranks) send to
// *names*, not processors. A distributed directory with per-PE
// location caches routes messages; when an entity migrates, stale
// cache entries cause one extra forwarding hop, after which the
// sender's cache is corrected — so "object or thread migration with
// ongoing point-to-point communication" works at any time.
//
// Delivery is in-order per (sender PE, destination entity) pair and
// carries virtual timestamps from a latency model, so the simulated
// machine's communication costs appear on the virtual clock.
package comm

import (
	"fmt"
	"sync"
)

// EntityID names a migratable communication endpoint,
// location-independently.
type EntityID uint64

// Message is one network message.
type Message struct {
	To   EntityID
	From EntityID
	Tag  int
	Data []byte

	// SendTime is the sender's virtual clock at Send; Arrival is
	// SendTime plus per-hop latency, set by the network.
	SendTime float64
	Arrival  float64

	// Hops counts delivery attempts; >1 means forwarding happened.
	Hops int
}

// LatencyModel charges alpha + beta*bytes nanoseconds per hop — the
// standard postal model.
type LatencyModel struct {
	Alpha       float64 // ns per message
	BetaPerByte float64 // ns per byte
}

// Cost returns the virtual nanoseconds one hop of n bytes takes.
func (m LatencyModel) Cost(n int) float64 { return m.Alpha + m.BetaPerByte*float64(n) }

// DefaultLatency approximates the paper's Myrinet-class cluster
// interconnect: ~10 µs latency, ~4 ns/byte (≈250 MB/s).
var DefaultLatency = LatencyModel{Alpha: 10_000, BetaPerByte: 4}

// Network connects NumPEs endpoints through a directory.
type Network struct {
	lat       LatencyModel
	endpoints []*Endpoint

	mu  sync.Mutex
	loc map[EntityID]int // authoritative entity locations

	// stats
	sent     uint64
	forwards uint64
	bytes    uint64
}

// NewNetwork builds a network of numPEs endpoints.
func NewNetwork(numPEs int, lat LatencyModel) *Network {
	n := &Network{lat: lat, loc: make(map[EntityID]int)}
	for pe := 0; pe < numPEs; pe++ {
		n.endpoints = append(n.endpoints, &Endpoint{
			net:   n,
			pe:    pe,
			cache: make(map[EntityID]int),
		})
	}
	for _, e := range n.endpoints {
		e.cond = sync.NewCond(&e.mu)
	}
	return n
}

// NumPEs returns the endpoint count.
func (n *Network) NumPEs() int { return len(n.endpoints) }

// Endpoint returns PE pe's endpoint.
func (n *Network) Endpoint(pe int) *Endpoint { return n.endpoints[pe] }

// Latency returns the network's latency model.
func (n *Network) Latency() LatencyModel { return n.lat }

// Register places entity id on PE pe. Registering an existing entity
// is an error; use MigrateEntity to move it.
func (n *Network) Register(id EntityID, pe int) error {
	if pe < 0 || pe >= len(n.endpoints) {
		return fmt.Errorf("comm: Register(%d): PE %d out of range", id, pe)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.loc[id]; ok {
		return fmt.Errorf("comm: entity %d already registered on PE %d", id, old)
	}
	n.loc[id] = pe
	return nil
}

// Deregister removes an entity (exit).
func (n *Network) Deregister(id EntityID) {
	n.mu.Lock()
	delete(n.loc, id)
	n.mu.Unlock()
}

// Locate returns the authoritative location of id.
func (n *Network) Locate(id EntityID) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	pe, ok := n.loc[id]
	if !ok {
		return 0, fmt.Errorf("comm: entity %d is not registered", id)
	}
	return pe, nil
}

// MigrateEntity moves id's authoritative location to PE to. Old cache
// entries at other PEs go stale and are corrected lazily on the next
// forwarded message.
func (n *Network) MigrateEntity(id EntityID, to int) error {
	if to < 0 || to >= len(n.endpoints) {
		return fmt.Errorf("comm: MigrateEntity(%d): PE %d out of range", id, to)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.loc[id]; !ok {
		return fmt.Errorf("comm: entity %d is not registered", id)
	}
	n.loc[id] = to
	return nil
}

// Stats returns (messages sent, forwarding hops, payload bytes).
func (n *Network) Stats() (sent, forwards, bytes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.forwards, n.bytes
}

// Endpoint is one PE's attachment to the network: an inbox plus a
// location cache.
type Endpoint struct {
	net *Network
	pe  int

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []*Message
	cache map[EntityID]int
	hook  func() // optional wakeup hook (scheduler integration)
}

// PE returns the endpoint's processor index.
func (e *Endpoint) PE() int { return e.pe }

// SetWakeHook registers fn to run (without locks held) whenever a
// message arrives — the converse scheduler uses it to wake its loop.
func (e *Endpoint) SetWakeHook(fn func()) {
	e.mu.Lock()
	e.hook = fn
	e.mu.Unlock()
}

// Send routes msg from this endpoint's PE toward msg.To, charging one
// hop of latency per delivery attempt. Stale location caches produce
// forwarding hops; the cache self-corrects afterwards.
func (e *Endpoint) Send(msg *Message) error {
	if msg == nil {
		return fmt.Errorf("comm: Send(nil)")
	}
	// Where do we *think* the entity is?
	e.mu.Lock()
	dest, cached := e.cache[msg.To]
	e.mu.Unlock()
	if !cached {
		var err error
		dest, err = e.net.Locate(msg.To)
		if err != nil {
			return err
		}
	}
	msg.Hops++
	msg.Arrival = msg.SendTime + e.net.lat.Cost(len(msg.Data))
	if msg.Hops == 1 {
		e.net.mu.Lock()
		e.net.sent++
		e.net.bytes += uint64(len(msg.Data))
		e.net.mu.Unlock()
	}

	target := e.net.endpoints[dest]
	// The entity may have moved since our cache entry: the target PE
	// checks authority and forwards if needed.
	actual, err := e.net.Locate(msg.To)
	if err != nil {
		return err
	}
	if actual != dest {
		// Stale: the wrong PE received it and forwards. Correct our
		// cache and re-send from the wrong PE, costing another hop.
		e.net.mu.Lock()
		e.net.forwards++
		e.net.mu.Unlock()
		e.mu.Lock()
		e.cache[msg.To] = actual
		e.mu.Unlock()
		fwd := e.net.endpoints[dest]
		msg.SendTime = msg.Arrival // forwarding leaves on arrival
		return fwd.forward(msg, actual)
	}
	e.mu.Lock()
	e.cache[msg.To] = dest
	e.mu.Unlock()
	target.deliver(msg)
	return nil
}

// forward re-sends a misdelivered message from this PE to the
// authoritative location.
func (e *Endpoint) forward(msg *Message, to int) error {
	msg.Hops++
	msg.Arrival = msg.SendTime + e.net.lat.Cost(len(msg.Data))
	e.net.endpoints[to].deliver(msg)
	return nil
}

// deliver appends msg to the inbox and wakes any waiter.
func (e *Endpoint) deliver(msg *Message) {
	e.mu.Lock()
	e.inbox = append(e.inbox, msg)
	hook := e.hook
	e.cond.Broadcast()
	e.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Poll removes and returns the oldest inbox message, or nil.
func (e *Endpoint) Poll() *Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.inbox) == 0 {
		return nil
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	return m
}

// Recv blocks until a message arrives and returns it.
func (e *Endpoint) Recv() *Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 {
		e.cond.Wait()
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	return m
}

// Pending returns the inbox depth.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}
