// Transport pluggability: the Network's delivery fabric is an
// interface so the Machine can shard its PEs across OS processes. The
// default backend is the in-process ring-buffer inbox path — zero
// copies, no serialization, bit-for-bit the pre-transport behaviour —
// selected by the nil Transport. A non-nil Transport makes the
// Network *sharded*: endpoints in [peLo, peHi) are local (messages
// still take the ring-buffer path untouched), and a message bound for
// any other PE is handed to the Transport as an envelope of payloads,
// to reappear on the owning process via DeliverLocal.
//
// Contract for Transport implementations:
//
//   - Deliver(pe, msgs) ships the payloads to the process owning PE
//     pe; on that process they MUST be handed to
//     Network.DeliverLocal(pe, msgs) in the order sent, per
//     (sending process, destination PE) pair — the in-order delivery
//     guarantee of the local path extends across the wire;
//   - messages cross by value: timestamps (SendTime, Arrival, VTime)
//     and Hops are carried exactly (float64 bit patterns preserved),
//     which is what keeps cross-process virtual-time predictions
//     bitwise-identical to in-process runs;
//   - a Deliver error is fatal: the Network panics. A worker process
//     dying mid-run is a hard error for now (no restart protocol).
//
// Every process in a sharded run constructs the same global directory
// (same registrations, same range tables), so Locate answers are
// authoritative everywhere and the epoch-gated owner checks +
// Endpoint.Forward chase migrated entities across process boundaries
// exactly like they chase them across local PEs.
package comm

import "fmt"

// Transport ships message envelopes to PEs owned by other processes.
// See the package comment above for the full contract.
type Transport interface {
	// Deliver ships msgs to remote PE pe (one envelope). The
	// implementation owns the slice after the call returns.
	Deliver(pe int, msgs []*Message) error
	// Close tears the transport down.
	Close() error
}

// ShardTransport is the full surface a multi-process worker needs
// from its fabric: envelope delivery (Transport) plus the control
// plane and lifecycle shared by the socket and shared-memory
// backends. shard.Worker holds one of these, so a run picks its
// fabric at rendezvous time.
type ShardTransport interface {
	Transport
	Attach(n *Network, peLo, peHi int) error
	SetControlHandler(h ControlHandler)
	Start() error
	SendControl(w int, kind uint32, payload []byte) error
	Broadcast(kind uint32, payload []byte) error
	Retire()
	SocketStats() SocketStats
}

// Backlogger is implemented by transports that can report how many
// frame bytes are queued (or published) but not yet consumed by the
// far side that they know about. The adaptive aggregation policy
// (AggPolicy.Adaptive) uses it as its backpressure signal; zero means
// the wire is keeping up.
type Backlogger interface {
	Backlog() int
}

// SetTransport makes the network sharded: endpoints in [peLo, peHi)
// are local to this process, every other PE is reached through t.
// Must be called before any traffic flows (the fields are read
// without synchronization on the send fast path). When sharded, the
// per-endpoint location caches are bypassed — every Send routes on
// the authoritative directory answer — so a stale cache can never
// bounce a message to a process that no longer owns the entity.
func (n *Network) SetTransport(t Transport, peLo, peHi int) error {
	if t == nil {
		return fmt.Errorf("comm: SetTransport(nil)")
	}
	if peLo < 0 || peHi > len(n.endpoints) || peLo >= peHi {
		return fmt.Errorf("comm: SetTransport: local PE range [%d,%d) invalid for %d PEs", peLo, peHi, len(n.endpoints))
	}
	n.xport, n.peLo, n.peHi = t, peLo, peHi
	return nil
}

// Transport returns the configured transport (nil on the default
// in-process backend).
func (n *Network) Transport() Transport { return n.xport }

// LocalPE reports whether pe is owned by this process (always true on
// the in-process backend).
func (n *Network) LocalPE(pe int) bool {
	return n.xport == nil || (pe >= n.peLo && pe < n.peHi)
}

// DeliverLocal injects an envelope of payloads arriving from another
// process into local PE pe's inbox — the receive half of a Transport.
// The messages' timestamps and hop counts were set by the sending
// network before the wire crossing and are used as-is.
func (n *Network) DeliverLocal(pe int, msgs []*Message) error {
	if !n.LocalPE(pe) {
		return fmt.Errorf("comm: DeliverLocal(%d): PE not local to [%d,%d)", pe, n.peLo, n.peHi)
	}
	n.endpoints[pe].deliverBatch(msgs)
	return nil
}

// deliverTo routes one message to PE pe: the local ring-buffer inbox
// when pe is ours, otherwise a one-payload envelope over the
// transport. The nil check is the entire cost on the default path.
func (n *Network) deliverTo(pe int, msg *Message) {
	if n.xport == nil || (pe >= n.peLo && pe < n.peHi) {
		n.endpoints[pe].deliver(msg)
		return
	}
	n.remoteSend(pe, []*Message{msg})
}

// deliverBatchTo routes a flushed envelope to PE pe — one inbox lock
// locally, one wire envelope remotely (the TRAM coalescing carries
// straight through to the socket).
func (n *Network) deliverBatchTo(pe int, msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	if n.xport == nil || (pe >= n.peLo && pe < n.peHi) {
		n.endpoints[pe].deliverBatch(msgs)
		return
	}
	n.remoteSend(pe, msgs)
}

// forwardTo re-sends a misdelivered message from PE of origin toward
// its authoritative location, charging one hop.
func (n *Network) forwardTo(msg *Message, to int) error {
	msg.Hops++
	msg.Arrival = msg.SendTime + n.lat.Cost(len(msg.Data))
	n.deliverTo(to, msg)
	return nil
}

// remoteSend ships one envelope over the transport. A transport
// failure is fatal by contract: a worker process that died mid-run
// cannot be papered over without corrupting the virtual-time model.
func (n *Network) remoteSend(pe int, msgs []*Message) {
	n.remoteEnvelopes.Add(1)
	n.remotePayloads.Add(uint64(len(msgs)))
	var b uint64
	for _, m := range msgs {
		b += uint64(len(m.Data))
	}
	n.remoteBytes.Add(b)
	if err := n.xport.Deliver(pe, msgs); err != nil {
		panic(fmt.Sprintf("comm: transport delivery to PE %d failed: %v", pe, err))
	}
}

// StatsSnapshot is every network counter in one struct, so tables and
// harnesses take one consistent-enough snapshot instead of reaching
// into separate getters. Counters are read individually (each is an
// atomic); quiesce the machine first for exact numbers.
type StatsSnapshot struct {
	// Sent counts Send/SendStream calls; Forwards counts forwarding
	// hops (stale cache or post-migration chase); Bytes is payload
	// bytes, counted once per send.
	Sent, Forwards, Bytes uint64
	// Envelopes/AggPayloads are the streaming-aggregation counters:
	// envelopes flushed and the payloads they carried.
	Envelopes, AggPayloads uint64
	// TopoHops is the logical hops charged by topology-aware
	// collective trees.
	TopoHops uint64
	// RemoteEnvelopes/RemotePayloads/RemoteBytes split out traffic
	// that left the process over the transport (all zero on the
	// in-process backend).
	RemoteEnvelopes, RemotePayloads, RemoteBytes uint64
}

// Snapshot returns the current value of every network counter.
func (n *Network) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Sent:            n.sent.Load(),
		Forwards:        n.forwards.Load(),
		Bytes:           n.bytes.Load(),
		Envelopes:       n.envelopes.Load(),
		AggPayloads:     n.aggPayloads.Load(),
		TopoHops:        n.topoHops.Load(),
		RemoteEnvelopes: n.remoteEnvelopes.Load(),
		RemotePayloads:  n.remotePayloads.Load(),
		RemoteBytes:     n.remoteBytes.Load(),
	}
}
