// SocketTransport: the multi-process Transport backend. Worker
// processes hold one stream connection (unix-domain or TCP — anything
// net.Conn) to every peer; envelopes encoded by wire.go cross as
// length-prefixed frames. Each peer link has a dedicated writer
// goroutine that drains every frame queued since its last write into
// a single net.Buffers write — the writev-style coalescing that turns
// a burst of fine-grained envelopes into one syscall — and a reader
// goroutine that decodes frames and injects them with DeliverLocal.
// Per (sender, link) frame order is the enqueue order, so the
// transport contract's in-order guarantee falls out of stream FIFO.
//
// Besides envelopes the wire carries control frames — small typed
// blobs for the orchestration layer (termination barriers, migration
// records, step exchanges). Control frames share the link FIFO with
// envelopes, which the shard layer exploits: a DONE sent after the
// last data frame is received after it too.
//
// Failure policy: a peer error (or EOF) before Retire marks the run
// broken and panics — a worker process dying mid-run is a hard error
// for now, there is no restart or rebalance protocol.
package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Frame types on a socket link.
const (
	frameEnvelope byte = 1
	frameControl  byte = 2
)

// maxFrameLen caps a claimed frame length (hostile-input guard: a
// forged prefix cannot make the reader allocate unbounded memory).
const maxFrameLen = 64 << 20

// ControlHandler receives control frames: the sending worker's index,
// the frame kind, and its payload. It runs on the link's reader
// goroutine — keep it quick and thread-safe.
type ControlHandler func(from int, kind uint32, payload []byte)

// SocketTransport bridges this process's PEs to its peers over stream
// sockets. Construct with NewSocketTransport, add one connection per
// peer with AddPeer, wire it to the network with Attach, then Start.
type SocketTransport struct {
	self    int
	workers int
	owner   func(pe int) int // global PE → owning worker index
	network *Network
	peers   []*sockPeer
	ctrl    ControlHandler

	done    chan struct{}
	closed  atomic.Bool
	retired atomic.Bool
	wgW     sync.WaitGroup
	wgR     sync.WaitGroup

	writeBatches atomic.Uint64
	framesSent   atomic.Uint64
	bytesSent    atomic.Uint64
	framesRecv   atomic.Uint64
	bytesRecv    atomic.Uint64
}

// sockPeer is one link: a connection plus the pending frame queue its
// writer goroutine drains.
type sockPeer struct {
	index int
	conn  net.Conn
	mu    sync.Mutex
	q     net.Buffers
	kick  chan struct{}
}

// NewSocketTransport builds a transport for worker self of workers
// total; owner maps a global PE index to the worker owning it.
func NewSocketTransport(self, workers int, owner func(pe int) int) *SocketTransport {
	return &SocketTransport{
		self:    self,
		workers: workers,
		owner:   owner,
		peers:   make([]*sockPeer, workers),
		done:    make(chan struct{}),
	}
}

// AddPeer attaches the connection to peer worker idx. Must be called
// for every peer before Start.
func (t *SocketTransport) AddPeer(idx int, conn net.Conn) error {
	if idx < 0 || idx >= t.workers || idx == t.self {
		return fmt.Errorf("comm: AddPeer(%d): invalid peer for worker %d of %d", idx, t.self, t.workers)
	}
	if t.peers[idx] != nil {
		return fmt.Errorf("comm: AddPeer(%d): duplicate peer", idx)
	}
	t.peers[idx] = &sockPeer{index: idx, conn: conn, kick: make(chan struct{}, 1)}
	return nil
}

// SetControlHandler installs the control-frame callback (before
// Start).
func (t *SocketTransport) SetControlHandler(h ControlHandler) { t.ctrl = h }

// Attach shards n onto this transport: PEs [peLo, peHi) are local.
func (t *SocketTransport) Attach(n *Network, peLo, peHi int) error {
	if err := n.SetTransport(t, peLo, peHi); err != nil {
		return err
	}
	t.network = n
	return nil
}

// Start launches the per-link reader and writer goroutines. Every
// peer must have been added.
func (t *SocketTransport) Start() error {
	for idx, p := range t.peers {
		if idx == t.self {
			continue
		}
		if p == nil {
			return fmt.Errorf("comm: Start: missing peer %d", idx)
		}
	}
	if t.network == nil {
		return fmt.Errorf("comm: Start: transport not attached to a network")
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wgW.Add(1)
		go t.writeLoop(p)
		t.wgR.Add(1)
		go t.readLoop(p)
	}
	return nil
}

// Deliver implements Transport: encode msgs as one envelope frame and
// queue it on the link to the worker owning pe.
func (t *SocketTransport) Deliver(pe int, msgs []*Message) error {
	w := t.owner(pe)
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: Deliver(%d): PE maps to worker %d (self %d)", pe, w, t.self)
	}
	body, err := EncodeEnvelope(pe, msgs)
	if err != nil {
		return err
	}
	return t.enqueue(t.peers[w], frameEnvelope, body)
}

// SendControl queues a control frame for peer worker w. FIFO with any
// envelopes previously queued for w.
func (t *SocketTransport) SendControl(w int, kind uint32, payload []byte) error {
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: SendControl(%d): invalid peer", w)
	}
	body := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(body, uint32(t.self))
	binary.LittleEndian.PutUint32(body[4:], kind)
	copy(body[8:], payload)
	return t.enqueue(t.peers[w], frameControl, body)
}

// Broadcast sends a control frame to every peer.
func (t *SocketTransport) Broadcast(kind uint32, payload []byte) error {
	for idx := range t.peers {
		if idx == t.self {
			continue
		}
		if err := t.SendControl(idx, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

// enqueue frames body (4-byte length prefix + type byte) and hands it
// to the link's writer.
func (t *SocketTransport) enqueue(p *sockPeer, typ byte, body []byte) error {
	n := 1 + len(body)
	if n > maxFrameLen {
		return fmt.Errorf("comm: frame of %d bytes exceeds the %d limit", n, maxFrameLen)
	}
	frame := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(frame, uint32(n))
	frame[4] = typ
	copy(frame[5:], body)
	p.mu.Lock()
	// The closed check lives under p.mu so it orders against Close's
	// final drain (which takes the same lock after flipping closed): a
	// frame appended here is either flushed by that drain or rejected,
	// never silently dropped between the writer's last pass and the
	// connection teardown.
	if t.closed.Load() {
		p.mu.Unlock()
		return fmt.Errorf("comm: socket transport closed")
	}
	p.q = append(p.q, frame)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return nil
}

// writeLoop drains the pending queue into single net.Buffers writes —
// on unix/TCP connections Go issues these as writev, so every frame
// queued between two wakeups coalesces into (usually) one syscall.
func (t *SocketTransport) writeLoop(p *sockPeer) {
	defer t.wgW.Done()
	for {
		select {
		case <-p.kick:
			t.drain(p)
		case <-t.done:
			t.drain(p) // final flush before teardown
			return
		}
	}
}

// drain writes every queued frame in one batch, repeating until the
// queue stays empty.
func (t *SocketTransport) drain(p *sockPeer) {
	for {
		p.mu.Lock()
		batch := p.q
		p.q = nil
		p.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		var bytes uint64
		for _, b := range batch {
			bytes += uint64(len(b))
		}
		t.writeBatches.Add(1)
		t.framesSent.Add(uint64(len(batch)))
		t.bytesSent.Add(bytes)
		if _, err := batch.WriteTo(p.conn); err != nil {
			t.linkFailed(p, err)
			return
		}
	}
}

// readLoop decodes frames off the link: envelopes go to DeliverLocal,
// control frames to the handler.
func (t *SocketTransport) readLoop(p *sockPeer) {
	defer t.wgR.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.linkFailed(p, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameLen {
			t.linkFailed(p, fmt.Errorf("frame length %d out of range", n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			t.linkFailed(p, err)
			return
		}
		t.framesRecv.Add(1)
		t.bytesRecv.Add(uint64(4 + n))
		switch buf[0] {
		case frameEnvelope:
			pe, msgs, err := DecodeEnvelope(buf[1:])
			if err != nil {
				t.linkFailed(p, err)
				return
			}
			if err := t.network.DeliverLocal(pe, msgs); err != nil {
				t.linkFailed(p, err)
				return
			}
		case frameControl:
			if len(buf) < 9 {
				t.linkFailed(p, fmt.Errorf("control frame truncated: %d bytes", len(buf)))
				return
			}
			from := int(binary.LittleEndian.Uint32(buf[1:5]))
			kind := binary.LittleEndian.Uint32(buf[5:9])
			if h := t.ctrl; h != nil {
				h(from, kind, buf[9:])
			}
		default:
			t.linkFailed(p, fmt.Errorf("unknown frame type %d", buf[0]))
			return
		}
	}
}

// linkFailed enforces the hard-error policy: any link fault before
// Retire kills the process.
func (t *SocketTransport) linkFailed(p *sockPeer, err error) {
	if t.closed.Load() || t.retired.Load() {
		return // expected teardown noise
	}
	panic(fmt.Sprintf("comm: socket transport worker %d: link to worker %d failed: %v", t.self, p.index, err))
}

// Retire marks the run complete: link errors after this point (peers
// closing their side first) are expected and ignored. Call once the
// termination barrier has been crossed, before Close.
func (t *SocketTransport) Retire() { t.retired.Store(true) }

// Close implements Transport: flush every pending frame, stop the
// writers, then tear the links down.
func (t *SocketTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	t.wgW.Wait() // writers flush their queues on the way out
	// One more pass per link: an enqueue that read closed==false could
	// have appended after its writer's final drain; the lock ordering
	// in enqueue guarantees any such frame is visible here.
	for _, p := range t.peers {
		if p != nil {
			t.drain(p)
		}
	}
	t.retired.Store(true)
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	t.wgR.Wait()
	return nil
}

// SocketStats snapshots the link counters. FramesSent/WriteBatches is
// the mean envelopes coalesced per writev — the syscall amortization
// the per-link writer bought.
type SocketStats struct {
	WriteBatches uint64 // net.Buffers writes issued
	FramesSent   uint64 // frames those writes carried
	BytesSent    uint64 // wire bytes written (frames + prefixes)
	FramesRecv   uint64 // frames decoded off the links
	BytesRecv    uint64 // wire bytes read
}

// SocketStats returns the current link counters.
func (t *SocketTransport) SocketStats() SocketStats {
	return SocketStats{
		WriteBatches: t.writeBatches.Load(),
		FramesSent:   t.framesSent.Load(),
		BytesSent:    t.bytesSent.Load(),
		FramesRecv:   t.framesRecv.Load(),
		BytesRecv:    t.bytesRecv.Load(),
	}
}
