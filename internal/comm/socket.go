// SocketTransport: the multi-process Transport backend. Worker
// processes hold one stream connection (unix-domain or TCP — anything
// net.Conn) to every peer; envelopes encoded by wire.go cross as
// length-prefixed frames. Each peer link has a dedicated writer
// goroutine that drains every frame queued since its last write into
// a single net.Buffers write — the writev-style coalescing that turns
// a burst of fine-grained envelopes into one syscall — and a reader
// goroutine that decodes frames and injects them with DeliverLocal.
// Per (sender, link) frame order is the enqueue order, so the
// transport contract's in-order guarantee falls out of stream FIFO.
//
// Besides envelopes the wire carries control frames — small typed
// blobs for the orchestration layer (termination barriers, migration
// records, step exchanges). Control frames share the link FIFO with
// envelopes, which the shard layer exploits: a DONE sent after the
// last data frame is received after it too.
//
// Failure policy: a peer error (or EOF) before Retire marks the run
// broken and panics — a worker process dying mid-run is a hard error
// for now, there is no restart or rebalance protocol.
package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Frame types on a socket link.
const (
	frameEnvelope byte = 1
	frameControl  byte = 2
)

// maxFrameLen caps a claimed frame length (hostile-input guard: a
// forged prefix cannot make the reader allocate unbounded memory).
const maxFrameLen = 64 << 20

// ControlHandler receives control frames: the sending worker's index,
// the frame kind, and its payload. It runs on the link's reader
// goroutine — keep it quick and thread-safe. The payload slice is a
// view into a recycled read buffer and is valid only for the duration
// of the call: a handler that keeps the bytes must copy them.
type ControlHandler func(from int, kind uint32, payload []byte)

// SocketTransport bridges this process's PEs to its peers over stream
// sockets. Construct with NewSocketTransport, add one connection per
// peer with AddPeer, wire it to the network with Attach, then Start.
type SocketTransport struct {
	self    int
	workers int
	owner   func(pe int) int // global PE → owning worker index
	network *Network
	peers   []*sockPeer
	ctrl    ControlHandler

	done    chan struct{}
	closed  atomic.Bool
	retired atomic.Bool
	wgW     sync.WaitGroup
	wgR     sync.WaitGroup

	writeBatches  atomic.Uint64
	writeSyscalls atomic.Uint64
	framesSent    atomic.Uint64
	bytesWritten  atomic.Uint64
	framesRecv    atomic.Uint64
	bytesRead     atomic.Uint64
	qbytes        atomic.Int64 // frame bytes queued, not yet written
}

// sockPeer is one link: a connection plus the pending frame queue its
// writer goroutine drains. Queued frames live in recycled buffers
// (bufpool.go); ownership passes enqueue → drain, which returns them
// to the pool once the writev completes. spare/scratch are the
// writer-side slice recycling: spare is the previous batch's queue
// slice handed back for reuse, scratch the net.Buffers copy WriteTo
// is allowed to consume (it reslices its argument in place, and we
// still need the original frame pointers to recycle them).
type sockPeer struct {
	index   int
	conn    net.Conn
	mu      sync.Mutex
	q       net.Buffers
	kick    chan struct{}
	spare   net.Buffers
	scratch net.Buffers
}

// NewSocketTransport builds a transport for worker self of workers
// total; owner maps a global PE index to the worker owning it.
func NewSocketTransport(self, workers int, owner func(pe int) int) *SocketTransport {
	return &SocketTransport{
		self:    self,
		workers: workers,
		owner:   owner,
		peers:   make([]*sockPeer, workers),
		done:    make(chan struct{}),
	}
}

// AddPeer attaches the connection to peer worker idx. Must be called
// for every peer before Start.
func (t *SocketTransport) AddPeer(idx int, conn net.Conn) error {
	if idx < 0 || idx >= t.workers || idx == t.self {
		return fmt.Errorf("comm: AddPeer(%d): invalid peer for worker %d of %d", idx, t.self, t.workers)
	}
	if t.peers[idx] != nil {
		return fmt.Errorf("comm: AddPeer(%d): duplicate peer", idx)
	}
	t.peers[idx] = &sockPeer{index: idx, conn: conn, kick: make(chan struct{}, 1)}
	return nil
}

// SetControlHandler installs the control-frame callback (before
// Start).
func (t *SocketTransport) SetControlHandler(h ControlHandler) { t.ctrl = h }

// Attach shards n onto this transport: PEs [peLo, peHi) are local.
func (t *SocketTransport) Attach(n *Network, peLo, peHi int) error {
	if err := n.SetTransport(t, peLo, peHi); err != nil {
		return err
	}
	t.network = n
	return nil
}

// Start launches the per-link reader and writer goroutines. Every
// peer must have been added.
func (t *SocketTransport) Start() error {
	for idx, p := range t.peers {
		if idx == t.self {
			continue
		}
		if p == nil {
			return fmt.Errorf("comm: Start: missing peer %d", idx)
		}
	}
	if t.network == nil {
		return fmt.Errorf("comm: Start: transport not attached to a network")
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wgW.Add(1)
		go t.writeLoop(p)
		t.wgR.Add(1)
		go t.readLoop(p)
	}
	return nil
}

// Deliver implements Transport: encode msgs as one envelope frame —
// appended straight into a recycled buffer, no intermediate body
// slice — and queue it on the link to the worker owning pe.
func (t *SocketTransport) Deliver(pe int, msgs []*Message) error {
	w := t.owner(pe)
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: Deliver(%d): PE maps to worker %d (self %d)", pe, w, t.self)
	}
	frame, err := envelopeFrame(pe, msgs)
	if err != nil {
		return err
	}
	return t.enqueueFrame(t.peers[w], frame)
}

// envelopeFrame builds a complete envelope frame (length prefix, type
// byte, envelope image) in a recycled buffer. Shared by both
// multi-process transports; the caller owns the buffer and must
// putBuf it once it is off the wire.
func envelopeFrame(pe int, msgs []*Message) ([]byte, error) {
	n := 1 + envelopeWireSize(msgs)
	if n > maxFrameLen {
		return nil, fmt.Errorf("comm: frame of %d bytes exceeds the %d limit", n, maxFrameLen)
	}
	frame := getBuf(4 + n)
	frame = appendU32(frame, uint32(n))
	frame = append(frame, frameEnvelope)
	frame = appendEnvelope(frame, pe, msgs)
	return frame, nil
}

// controlFrame builds a complete control frame in a recycled buffer.
func controlFrame(self int, kind uint32, payload []byte) ([]byte, error) {
	n := 1 + 8 + len(payload)
	if n > maxFrameLen {
		return nil, fmt.Errorf("comm: frame of %d bytes exceeds the %d limit", n, maxFrameLen)
	}
	frame := getBuf(4 + n)
	frame = appendU32(frame, uint32(n))
	frame = append(frame, frameControl)
	frame = appendU32(frame, uint32(self))
	frame = appendU32(frame, kind)
	frame = append(frame, payload...)
	return frame, nil
}

// SendControl queues a control frame for peer worker w. FIFO with any
// envelopes previously queued for w.
func (t *SocketTransport) SendControl(w int, kind uint32, payload []byte) error {
	if w == t.self || w < 0 || w >= t.workers {
		return fmt.Errorf("comm: SendControl(%d): invalid peer", w)
	}
	frame, err := controlFrame(t.self, kind, payload)
	if err != nil {
		return err
	}
	return t.enqueueFrame(t.peers[w], frame)
}

// Broadcast sends a control frame to every peer.
func (t *SocketTransport) Broadcast(kind uint32, payload []byte) error {
	for idx := range t.peers {
		if idx == t.self {
			continue
		}
		if err := t.SendControl(idx, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

// enqueueFrame hands a ready frame (built in a recycled buffer, whose
// ownership transfers here) to the link's writer.
func (t *SocketTransport) enqueueFrame(p *sockPeer, frame []byte) error {
	p.mu.Lock()
	// The closed check lives under p.mu so it orders against Close's
	// final drain (which takes the same lock after flipping closed): a
	// frame appended here is either flushed by that drain or rejected,
	// never silently dropped between the writer's last pass and the
	// connection teardown.
	if t.closed.Load() {
		p.mu.Unlock()
		putBuf(frame)
		return fmt.Errorf("comm: socket transport closed")
	}
	p.q = append(p.q, frame)
	p.mu.Unlock()
	t.qbytes.Add(int64(len(frame)))
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return nil
}

// writeLoop drains the pending queue into single net.Buffers writes —
// on unix/TCP connections Go issues these as writev, so every frame
// queued between two wakeups coalesces into (usually) one syscall.
func (t *SocketTransport) writeLoop(p *sockPeer) {
	defer t.wgW.Done()
	for {
		select {
		case <-p.kick:
			t.drain(p)
		case <-t.done:
			t.drain(p) // final flush before teardown
			return
		}
	}
}

// drain writes every queued frame in one batch, repeating until the
// queue stays empty, and recycles the frame buffers afterwards. The
// WriteTo goes through a scratch copy of the batch because
// net.Buffers consumes (reslices) the slice it writes from — the
// original batch keeps the frame pointers the pool needs back.
func (t *SocketTransport) drain(p *sockPeer) {
	for {
		p.mu.Lock()
		batch := p.q
		p.q = p.spare[:0]
		p.spare = nil
		p.mu.Unlock()
		if len(batch) == 0 {
			p.spare = batch // hand the empty slice back for reuse
			return
		}
		var bytes uint64
		for _, b := range batch {
			bytes += uint64(len(b))
		}
		t.writeBatches.Add(1)
		// Go's net.Buffers issues writev in chunks of up to 1024
		// iovecs, so the syscall count is derivable from the batch
		// size (partial writes can add more; this is the floor).
		t.writeSyscalls.Add(uint64((len(batch) + 1023) / 1024))
		t.framesSent.Add(uint64(len(batch)))
		t.bytesWritten.Add(bytes)
		t.qbytes.Add(-int64(bytes))
		// wb and scratch share a backing array; WriteTo consumes wb
		// (advancing both the slice and its elements), scratch keeps
		// the original header so its capacity survives for next time.
		scratch := append(p.scratch[:0], batch...)
		wb := scratch
		_, err := wb.WriteTo(p.conn)
		p.scratch = scratch[:0]
		if err != nil {
			t.linkFailed(p, err)
			return
		}
		for i := range batch {
			putBuf(batch[i])
			batch[i] = nil
		}
		p.spare = batch[:0]
	}
}

// readLoop decodes frames off the link: envelopes go to DeliverLocal,
// control frames to the handler.
func (t *SocketTransport) readLoop(p *sockPeer) {
	defer t.wgR.Done()
	br := bufio.NewReaderSize(p.conn, 1<<16)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.linkFailed(p, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameLen {
			t.linkFailed(p, fmt.Errorf("frame length %d out of range", n))
			return
		}
		// Recycled read buffer: dispatchFrame's consumers fully copy
		// out of it (DecodeEnvelope's payloads are fresh allocations,
		// control handlers must not retain — see ControlHandler), so
		// it goes straight back to the pool.
		buf := getBuf(int(n))[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			t.linkFailed(p, err)
			return
		}
		t.framesRecv.Add(1)
		t.bytesRead.Add(uint64(4 + n))
		if err := dispatchFrame(t.network, t.ctrl, buf); err != nil {
			t.linkFailed(p, err)
			return
		}
		putBuf(buf)
	}
}

// dispatchFrame routes one decoded frame (type byte + body): envelopes
// to DeliverLocal, control frames to the handler. Shared by both
// multi-process transports. The buffer is only borrowed: by the time
// dispatchFrame returns nothing retains it.
func dispatchFrame(network *Network, ctrl ControlHandler, buf []byte) error {
	switch buf[0] {
	case frameEnvelope:
		pe, msgs, err := DecodeEnvelope(buf[1:])
		if err != nil {
			return err
		}
		if network == nil {
			return fmt.Errorf("comm: envelope frame on a control-only transport")
		}
		return network.DeliverLocal(pe, msgs)
	case frameControl:
		if len(buf) < 9 {
			return fmt.Errorf("control frame truncated: %d bytes", len(buf))
		}
		from := int(binary.LittleEndian.Uint32(buf[1:5]))
		kind := binary.LittleEndian.Uint32(buf[5:9])
		if ctrl != nil {
			ctrl(from, kind, buf[9:])
		}
		return nil
	default:
		return fmt.Errorf("unknown frame type %d", buf[0])
	}
}

// linkFailed enforces the hard-error policy: any link fault before
// Retire kills the process.
func (t *SocketTransport) linkFailed(p *sockPeer, err error) {
	if t.closed.Load() || t.retired.Load() {
		return // expected teardown noise
	}
	panic(fmt.Sprintf("comm: socket transport worker %d: link to worker %d failed: %v", t.self, p.index, err))
}

// Retire marks the run complete: link errors after this point (peers
// closing their side first) are expected and ignored. Call once the
// termination barrier has been crossed, before Close.
func (t *SocketTransport) Retire() { t.retired.Store(true) }

// Close implements Transport: flush every pending frame, stop the
// writers, then tear the links down.
func (t *SocketTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	t.wgW.Wait() // writers flush their queues on the way out
	// One more pass per link: an enqueue that read closed==false could
	// have appended after its writer's final drain; the lock ordering
	// in enqueue guarantees any such frame is visible here.
	for _, p := range t.peers {
		if p != nil {
			t.drain(p)
		}
	}
	t.retired.Store(true)
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	t.wgR.Wait()
	return nil
}

// SocketStats snapshots the link counters of a multi-process
// transport (both fabrics report the same shape).
// FramesSent/WriteSyscalls is the mean envelopes coalesced per
// syscall — the amortization the per-link writer bought; on the
// shared-memory fabric WriteSyscalls is zero (no syscalls at all) and
// Wakes/Parks describe the spin-then-park reader instead.
type SocketStats struct {
	WriteBatches  uint64 // whole-queue drain passes (socket: net.Buffers writes)
	WriteSyscalls uint64 // writev syscalls issued (1024-iovec chunks; 0 on shm)
	FramesSent    uint64 // frames written to the links
	BytesWritten  uint64 // wire bytes written (frames + prefixes)
	FramesRecv    uint64 // frames decoded off the links
	BytesRead     uint64 // wire bytes read
	Wakes         uint64 // shm readers finding data after having parked
	Parks         uint64 // shm reader transitions from spinning to sleeping
}

// SocketStats returns the current link counters.
func (t *SocketTransport) SocketStats() SocketStats {
	return SocketStats{
		WriteBatches:  t.writeBatches.Load(),
		WriteSyscalls: t.writeSyscalls.Load(),
		FramesSent:    t.framesSent.Load(),
		BytesWritten:  t.bytesWritten.Load(),
		FramesRecv:    t.framesRecv.Load(),
		BytesRead:     t.bytesRead.Load(),
	}
}

// Backlog reports the frame bytes queued on the links but not yet
// written — the backpressure signal the adaptive aggregation policy
// keys on (Backlogger).
func (t *SocketTransport) Backlog() int {
	if n := t.qbytes.Load(); n > 0 {
		return int(n)
	}
	return 0
}
