package comm

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// twoShards builds two sharded 4-PE networks in one test process —
// worker 0 owning PEs [0,2), worker 1 owning [2,4) — linked by a real
// unix-domain socket pair, with identical directory contents on both
// sides (the sharded-run invariant).
func twoShards(t *testing.T) (n0, n1 *Network, t0, t1 *SocketTransport) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var accepted net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		accepted, _ = l.Accept()
	}()
	dialed, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if accepted == nil {
		t.Fatal("accept failed")
	}

	owner := func(pe int) int { return pe / 2 }
	lat := LatencyModel{Alpha: 100, BetaPerByte: 1}
	n0, n1 = NewNetwork(4, lat), NewNetwork(4, lat)
	t0 = NewSocketTransport(0, 2, owner)
	t1 = NewSocketTransport(1, 2, owner)
	if err := t0.AddPeer(1, accepted); err != nil {
		t.Fatal(err)
	}
	if err := t1.AddPeer(0, dialed); err != nil {
		t.Fatal(err)
	}
	if err := t0.Attach(n0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Attach(n1, 2, 4); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		t0.Retire()
		t1.Retire()
		t0.Close()
		t1.Close()
	})
	return n0, n1, t0, t1
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSocketTransportSend sends PE0→PE2 across the socket and checks
// the message arrives bit-for-bit with the same latency accounting a
// local delivery would get.
func TestSocketTransportSend(t *testing.T) {
	n0, n1, _, _ := twoShards(t)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(9), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1Start(t, n0, n1); err != nil {
		t.Fatal(err)
	}

	const count = 50
	for i := 0; i < count; i++ {
		msg := &Message{To: 9, From: 1, Tag: i, Data: []byte{byte(i), 2, 3, 4}, SendTime: float64(i) * 10, VTime: float64(i)}
		if err := n0.Endpoint(0).Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	dst := n1.Endpoint(2)
	waitFor(t, "cross-process delivery", func() bool { return dst.Pending() == count })
	for i := 0; i < count; i++ {
		m := dst.Poll()
		if m.Tag != i {
			t.Fatalf("out of order: got tag %d at position %d", m.Tag, i)
		}
		wantArrival := float64(i)*10 + n0.Latency().Cost(4)
		if m.Arrival != wantArrival || m.Hops != 1 || m.VTime != float64(i) {
			t.Fatalf("msg %d: arrival %v want %v, hops %d, vtime %v", i, m.Arrival, wantArrival, m.Hops, m.VTime)
		}
	}

	s := n0.Snapshot()
	if s.Sent != count || s.RemoteEnvelopes != count || s.RemotePayloads != count || s.RemoteBytes != count*4 {
		t.Fatalf("sender snapshot: %+v", s)
	}
	if s1 := n1.Snapshot(); s1.RemoteEnvelopes != 0 || s1.Sent != 0 {
		t.Fatalf("receiver snapshot should be clean: %+v", s1)
	}
}

// t1Start starts both transports (helper; Start needs all peers).
func t1Start(t *testing.T, n0, n1 *Network) error {
	t.Helper()
	if err := n0.Transport().(*SocketTransport).Start(); err != nil {
		return err
	}
	return n1.Transport().(*SocketTransport).Start()
}

// TestSocketTransportAggregated drives SendStream traffic across the
// shard boundary: a flushed TRAM bucket must cross as one wire
// envelope (coalescing preserved end to end).
func TestSocketTransportAggregated(t *testing.T) {
	n0, n1, t0, _ := twoShards(t)
	for _, n := range []*Network{n0, n1} {
		for i := 0; i < 8; i++ {
			if err := n.Register(EntityID(100+i), 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	n0.EnableAggregation(AggPolicy{MaxPayloads: 8})
	if err := t1Start(t, n0, n1); err != nil {
		t.Fatal(err)
	}

	src := n0.Endpoint(1)
	for i := 0; i < 8; i++ {
		if err := src.SendStream(&Message{To: EntityID(100 + i), From: 1, Data: []byte("abcd")}); err != nil {
			t.Fatal(err)
		}
	}
	dst := n1.Endpoint(3)
	waitFor(t, "aggregated delivery", func() bool { return dst.Pending() == 8 })
	s := n0.Snapshot()
	if s.Envelopes != 1 || s.AggPayloads != 8 {
		t.Fatalf("agg stats: %+v", s)
	}
	if s.RemoteEnvelopes != 1 || s.RemotePayloads != 8 {
		t.Fatalf("remote envelope should carry all 8 payloads in one frame: %+v", s)
	}
	if st := t0.SocketStats(); st.FramesSent != 1 {
		t.Fatalf("wire frames: %+v", st)
	}
}

// TestSocketTransportForward moves an entity across the shard
// boundary mid-stream: messages arriving at the old owner must chase
// it over the socket via Endpoint.Forward.
func TestSocketTransportForward(t *testing.T) {
	n0, n1, _, _ := twoShards(t)
	base := PinnedEntity | EntityID(1<<20)
	for _, n := range []*Network{n0, n1} {
		if err := n.RegisterRange(base, []int{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1Start(t, n0, n1); err != nil {
		t.Fatal(err)
	}

	// A message is sent while worker 1's directory still says PE 1...
	msg := &Message{To: base, From: 99, Data: []byte("chase me"), SendTime: 5}
	if err := n1.Endpoint(2).Send(msg); err != nil {
		t.Fatal(err)
	}
	old := n0.Endpoint(1)
	waitFor(t, "first hop", func() bool { return old.Pending() == 1 })
	got := old.Poll()

	// ...then the entity moves to PE 3 (worker 1) on both directories,
	// and the old owner forwards the straggler across the socket.
	for _, n := range []*Network{n0, n1} {
		if err := n.MoveRangeBatch(base, []RangeMove{{Index: 0, To: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.Forward(got); err != nil {
		t.Fatal(err)
	}
	dst := n1.Endpoint(3)
	waitFor(t, "forwarded delivery", func() bool { return dst.Pending() == 1 })
	m := dst.Poll()
	if m.Hops != 2 || string(m.Data) != "chase me" {
		t.Fatalf("forwarded message: hops %d, data %q", m.Hops, m.Data)
	}
	if s := n0.Snapshot(); s.Forwards != 1 {
		t.Fatalf("forward count on worker 0: %+v", s)
	}
}

// TestSocketTransportControl checks control frames arrive in FIFO
// order with envelopes on the same link.
func TestSocketTransportControl(t *testing.T) {
	n0, n1, t0, t1 := twoShards(t)
	for _, n := range []*Network{n0, n1} {
		if err := n.Register(EntityID(5), 0); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []string
	t0.SetControlHandler(func(from int, kind uint32, payload []byte) {
		mu.Lock()
		got = append(got, fmt.Sprintf("%d/%d/%s", from, kind, payload))
		mu.Unlock()
	})
	if err := t1Start(t, n0, n1); err != nil {
		t.Fatal(err)
	}

	// Data before control on the same link: the control frame must be
	// processed after the envelope is readable.
	if err := n1.Endpoint(3).Send(&Message{To: 5, From: 2, Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	if err := t1.SendControl(0, 7, []byte("done")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "control frame", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	if n0.Endpoint(0).Pending() != 1 {
		t.Fatal("envelope must precede the control frame in link FIFO")
	}
	mu.Lock()
	if got[0] != "1/7/done" {
		t.Fatalf("control frame: %q", got[0])
	}
	mu.Unlock()
}
