package comm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestAppendEnvelopeMatchesPup pins the hot-path encoder to the PUP
// reference: for random envelopes, appendEnvelope must produce the
// exact bytes EncodeEnvelope does (and envelopeWireSize their exact
// length) — the zero-alloc path is an optimization, never a format.
func TestAppendEnvelopeMatchesPup(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		pe := rng.Intn(1 << 20)
		msgs := make([]*Message, rng.Intn(9))
		for i := range msgs {
			data := make([]byte, rng.Intn(300))
			rng.Read(data)
			msgs[i] = &Message{
				To:       EntityID(rng.Uint64()),
				From:     EntityID(rng.Uint64()),
				Tag:      rng.Intn(1<<30) - (1 << 29),
				Hops:     rng.Intn(100) - 50,
				Seq:      rng.Uint64(),
				SendTime: math.Float64frombits(rng.Uint64()),
				Arrival:  rng.NormFloat64() * 1e9,
				VTime:    rng.Float64() * 1e12,
				Data:     data,
			}
		}
		want, err := EncodeEnvelope(pe, msgs)
		if err != nil {
			t.Fatal(err)
		}
		got := appendEnvelope(nil, pe, msgs)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: appendEnvelope diverges from EncodeEnvelope\n got %x\nwant %x", trial, got, want)
		}
		if len(got) != envelopeWireSize(msgs) {
			t.Fatalf("trial %d: envelopeWireSize %d, encoded %d", trial, envelopeWireSize(msgs), len(got))
		}
		// And it must decode back bit-for-bit.
		gotPE, back, err := DecodeEnvelope(got)
		if err != nil || gotPE != pe || len(back) != len(msgs) {
			t.Fatalf("trial %d: decode: pe %d/%d, %d msgs, err %v", trial, gotPE, pe, len(back), err)
		}
		for i, m := range back {
			o := msgs[i]
			if m.To != o.To || m.From != o.From || m.Tag != o.Tag || m.Hops != o.Hops || m.Seq != o.Seq ||
				math.Float64bits(m.SendTime) != math.Float64bits(o.SendTime) ||
				math.Float64bits(m.Arrival) != math.Float64bits(o.Arrival) ||
				math.Float64bits(m.VTime) != math.Float64bits(o.VTime) ||
				!bytes.Equal(m.Data, o.Data) {
				t.Fatalf("trial %d: message %d did not round-trip", trial, i)
			}
		}
	}
}
