package shard

// Process orchestration: Run re-executes the current binary once per
// worker with MIGFLOW_SHARD_* env vars; each worker listens (unix
// socket in a shared temp dir, or loopback TCP), prints "ADDR <addr>"
// on stdout, and waits for the parent to broadcast "ADDRS <a0> <a1>
// ..." on stdin. The mesh is then built deterministically — worker i
// dials every lower-indexed worker and sends a 4-byte LE index hello;
// it accepts one connection from every higher-indexed worker. The
// registered app runs and the worker prints "RESULT <json>" (or
// "ERROR <msg>"); any other stdout line is forwarded to the parent's
// stderr. A worker that dies is a hard error for the whole run.
//
// The "shm" fabric skips the socket mesh entirely: the parent
// pre-creates the full ring directory (comm.CreateShmMesh) in the
// shared temp dir before spawning anyone, each worker prints a
// placeholder "ADDR shm" to keep the rendezvous protocol uniform, and
// opens the rings by path. Ring creation can fail (non-unix platform,
// tmpfs quota); the parent then falls back to "unix" for the WHOLE
// run — the fabric choice must be uniform, since a mixed mesh would
// leave two workers waiting on fabrics the other never joins.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"migflow/internal/comm"
)

// Environment protocol between Run and WorkerMain.
const (
	envRole    = "MIGFLOW_SHARD_ROLE"
	envIndex   = "MIGFLOW_SHARD_INDEX"
	envWorkers = "MIGFLOW_SHARD_WORKERS"
	envNet     = "MIGFLOW_SHARD_NET"
	envDir     = "MIGFLOW_SHARD_DIR"
	envApp     = "MIGFLOW_SHARD_APP"
	envCfg     = "MIGFLOW_SHARD_CFG"
)

// meshDialTimeout bounds how long a worker keeps retrying a peer dial
// during mesh construction. Listeners are all up before ADDRS is
// broadcast, so failures here are transient OS-level conditions; a
// generous deadline keeps loaded CI machines from failing whole runs.
const meshDialTimeout = 30 * time.Second

// Fabric is the physical substrate a worker joined at rendezvous:
// a socket mesh (Conns holds one connection per peer) or a
// shared-memory ring directory (Dir) for co-located workers. Net is
// "unix", "tcp", or "shm" and tells the worker which half is live.
type Fabric struct {
	Net   string
	Dir   string           // shm only: directory holding the ring files
	Conns map[int]net.Conn // socket fabrics only: one conn per peer
}

// App is a worker-side entry point: run this process's share given
// the fabric and the spec payload; the returned value is marshaled as
// the worker's RESULT.
type App func(index, workers int, fab Fabric, payload []byte) (any, error)

var apps = map[string]App{}

// RegisterApp names a worker entry point WorkerMain can dispatch to.
func RegisterApp(name string, fn App) { apps[name] = fn }

// ProcSpec describes a multi-process run.
type ProcSpec struct {
	App     string
	Workers int
	Net     string // "unix" (default), "tcp", or "shm"
	Payload any    // marshaled to JSON and handed to every worker
}

// Run spawns spec.Workers copies of the current executable, wires
// their rendezvous, and returns each worker's raw RESULT payload in
// index order. Any worker error fails the whole run.
func Run(spec ProcSpec) ([]json.RawMessage, error) {
	if spec.Workers < 2 {
		return nil, fmt.Errorf("shard: need at least 2 workers, got %d", spec.Workers)
	}
	netKind := spec.Net
	if netKind == "" {
		netKind = "unix"
	}
	if netKind != "unix" && netKind != "tcp" && netKind != "shm" {
		return nil, fmt.Errorf("shard: unknown net %q (want unix, tcp, or shm)", netKind)
	}
	if _, ok := apps[spec.App]; !ok {
		return nil, fmt.Errorf("shard: app %q not registered in this binary", spec.App)
	}
	payload, err := json.Marshal(spec.Payload)
	if err != nil {
		return nil, fmt.Errorf("shard: marshaling payload: %w", err)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	// Rendezvous artifacts (socket files, ring files) live on tmpfs
	// when the platform has one: shm ring mappings on a disk-backed
	// filesystem pay writeback page faults on every publish.
	dir, err := os.MkdirTemp(comm.ShmDir(), "migflow-shard-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The shm fabric needs the full ring mesh on disk before any
	// worker starts; if the platform can't provide it, the whole run
	// falls back to unix sockets (a mixed-fabric mesh would deadlock).
	if netKind == "shm" {
		if err := comm.CreateShmMesh(dir, spec.Workers, 0); err != nil {
			fmt.Fprintf(os.Stderr, "shard: shm mesh unavailable (%v), falling back to unix sockets\n", err)
			netKind = "unix"
		}
	}

	type wproc struct {
		cmd *exec.Cmd
		out *bufio.Reader
		in  io.WriteCloser
	}
	procs := make([]*wproc, spec.Workers)
	killAll := func() {
		for _, wp := range procs {
			if wp != nil && wp.cmd.Process != nil {
				wp.cmd.Process.Kill()
			}
		}
	}
	for i := range procs {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envRole+"=worker",
			fmt.Sprintf("%s=%d", envIndex, i),
			fmt.Sprintf("%s=%d", envWorkers, spec.Workers),
			envNet+"="+netKind,
			envDir+"="+dir,
			envApp+"="+spec.App,
			envCfg+"="+string(payload),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			killAll()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			killAll()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			killAll()
			return nil, fmt.Errorf("shard: starting worker %d: %w", i, err)
		}
		procs[i] = &wproc{cmd: cmd, out: bufio.NewReaderSize(stdout, 1<<20), in: stdin}
	}

	fail := func(format string, a ...any) ([]json.RawMessage, error) {
		killAll()
		for _, wp := range procs {
			wp.cmd.Wait()
		}
		return nil, fmt.Errorf(format, a...)
	}

	// Rendezvous: collect each worker's listen address, broadcast all.
	addrs := make([]string, spec.Workers)
	for i, wp := range procs {
		line, err := wp.out.ReadString('\n')
		if err != nil {
			return fail("shard: worker %d died before rendezvous: %v", i, err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "ADDR ")
		if !ok {
			return fail("shard: worker %d: expected ADDR line, got %q", i, line)
		}
		addrs[i] = addr
	}
	all := "ADDRS " + strings.Join(addrs, " ") + "\n"
	for i, wp := range procs {
		if _, err := io.WriteString(wp.in, all); err != nil {
			return fail("shard: sending ADDRS to worker %d: %v", i, err)
		}
		wp.in.Close()
	}

	// Collect results. Non-protocol stdout lines pass through.
	results := make([]json.RawMessage, spec.Workers)
	for i, wp := range procs {
		for results[i] == nil {
			line, err := wp.out.ReadString('\n')
			switch {
			case strings.HasPrefix(line, "RESULT "):
				results[i] = json.RawMessage(strings.TrimSpace(line[len("RESULT "):]))
			case strings.HasPrefix(line, "ERROR "):
				return fail("shard: worker %d: %s", i, strings.TrimSpace(line[len("ERROR "):]))
			case err != nil:
				return fail("shard: worker %d exited without a result: %v", i, err)
			default:
				fmt.Fprintf(os.Stderr, "[shard worker %d] %s", i, line)
			}
		}
	}
	for i, wp := range procs {
		if err := wp.cmd.Wait(); err != nil {
			return fail("shard: worker %d: %v", i, err)
		}
	}
	return results, nil
}

// WorkerMain is the worker-process entry point. Call it first thing
// in main (and in TestMain): it returns false immediately in ordinary
// processes, and in a process spawned by Run it performs the
// rendezvous, runs the app, prints the result, and exits.
func WorkerMain() bool {
	if os.Getenv(envRole) != "worker" {
		return false
	}
	index, err1 := strconv.Atoi(os.Getenv(envIndex))
	workers, err2 := strconv.Atoi(os.Getenv(envWorkers))
	if err1 != nil || err2 != nil || index < 0 || index >= workers {
		workerFail(fmt.Errorf("bad index/workers env: %q/%q", os.Getenv(envIndex), os.Getenv(envWorkers)))
	}
	app, ok := apps[os.Getenv(envApp)]
	if !ok {
		workerFail(fmt.Errorf("app %q not registered", os.Getenv(envApp)))
	}
	netKind := os.Getenv(envNet)

	// The shm fabric has no listeners: the parent pre-created the ring
	// files, so the ADDR/ADDRS exchange is a pure liveness handshake
	// (every ring is mapped only after all workers exist).
	var l net.Listener
	var addr string
	switch netKind {
	case "shm":
		addr = "shm"
	case "unix":
		addr = filepath.Join(os.Getenv(envDir), fmt.Sprintf("w%d.sock", index))
		l, err1 = net.Listen("unix", addr)
	default:
		l, err1 = net.Listen("tcp", "127.0.0.1:0")
		if err1 == nil {
			addr = l.Addr().String()
		}
	}
	if err1 != nil {
		workerFail(fmt.Errorf("listen: %w", err1))
	}
	fmt.Printf("ADDR %s\n", addr)

	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil {
		workerFail(fmt.Errorf("reading ADDRS: %w", err))
	}
	fields := strings.Fields(line)
	if len(fields) != workers+1 || fields[0] != "ADDRS" {
		workerFail(fmt.Errorf("bad ADDRS line %q", line))
	}
	fab := Fabric{Net: netKind, Dir: os.Getenv(envDir)}
	if netKind != "shm" {
		fab.Conns, err = Mesh(index, workers, netKind, fields[1:], l)
		if err != nil {
			workerFail(fmt.Errorf("mesh: %w", err))
		}
		l.Close()
	}

	out, err := app(index, workers, fab, []byte(os.Getenv(envCfg)))
	if err != nil {
		workerFail(err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		workerFail(fmt.Errorf("marshaling result: %w", err))
	}
	fmt.Printf("RESULT %s\n", b)
	os.Exit(0)
	return true
}

func workerFail(err error) {
	fmt.Printf("ERROR %v\n", err)
	os.Exit(1)
}

// Mesh builds the full worker mesh from listen addresses: dial every
// lower index (sending our index as a 4-byte LE hello), accept one
// connection from every higher index (reading theirs).
func Mesh(index, workers int, netKind string, addrs []string, l net.Listener) (map[int]net.Conn, error) {
	conns := make(map[int]net.Conn, workers-1)
	type accepted struct {
		idx int
		c   net.Conn
		err error
	}
	need := workers - 1 - index
	acc := make(chan accepted, need)
	go func() {
		for k := 0; k < need; k++ {
			c, err := l.Accept()
			if err != nil {
				acc <- accepted{err: err}
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				acc <- accepted{err: err}
				return
			}
			acc <- accepted{idx: int(binary.LittleEndian.Uint32(hello[:])), c: c}
		}
	}()
	for j := 0; j < index; j++ {
		var c net.Conn
		var err error
		// Deadline-based retry rather than a fixed attempt count: every
		// peer was listening before ADDRS was broadcast, so a refused
		// dial only means the OS is slow under load (full backlog, CI
		// contention) — worth waiting out well past the happy path.
		deadline := time.Now().Add(meshDialTimeout)
		for {
			c, err = net.Dial(netKind, addrs[j])
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return nil, fmt.Errorf("dialing worker %d at %s: %w", j, addrs[j], err)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(index))
		if _, err := c.Write(hello[:]); err != nil {
			return nil, err
		}
		conns[j] = c
	}
	for k := 0; k < need; k++ {
		a := <-acc
		if a.err != nil {
			return nil, a.err
		}
		if _, dup := conns[a.idx]; dup || a.idx <= index || a.idx >= workers {
			return nil, fmt.Errorf("bad hello index %d", a.idx)
		}
		conns[a.idx] = a.c
	}
	return conns, nil
}
