package shard

// BigSim across processes: each worker drives a slab of the
// simulating PEs (bigsim.Shard) and the per-step delta frames cross
// the worker mesh as length-prefixed blobs directly on the rendezvous
// sockets — BigSim has its own clocks and mailboxes, so it needs the
// wire, not a comm.Network. On the shm fabric the same blobs travel
// as ctrlBlob control frames through a control-only ShmTransport
// (no comm.Network attached). Every worker reconstructs the identical
// merged StepStats stream, and that stream must match the 1-process
// simulator bit for bit.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"

	"migflow/internal/bigsim"
	"migflow/internal/comm"
)

// BigSimSpec parameterizes a sharded BigSim run.
type BigSimSpec struct {
	Cfg   bigsim.Config
	Steps int
}

// StepWire is one StepStats with its float64s as bits, so reports
// compare bitwise through JSON.
type StepWire struct {
	Step      int
	TimeBits  uint64
	PredBits  uint64
	Cross     int
	Intra     int
	Envelopes int
	Coalesced int
}

func stepWire(st bigsim.StepStats) StepWire {
	return StepWire{
		Step:      st.Step,
		TimeBits:  math.Float64bits(st.TimeNs),
		PredBits:  math.Float64bits(st.PredictedTargetNs),
		Cross:     st.CrossPEMessages,
		Intra:     st.IntraPEMessages,
		Envelopes: st.Envelopes,
		Coalesced: st.CoalescedGhosts,
	}
}

// BigSimReport is one worker's (machine-wide, identical on every
// worker) view of the run.
type BigSimReport struct {
	Worker int
	Steps  []StepWire
}

// frameLimit bounds a peer frame's claimed size (hostile-input guard;
// a 200k-target paper-scale frontier is well under 1 MiB).
const frameLimit = 64 << 20

// writeBlob / readBlob are the u32-length-prefixed frame transport.
func writeBlob(c net.Conn, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(b)
	return err
}

func readBlob(c net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > frameLimit {
		return nil, fmt.Errorf("shard: peer frame claims %d bytes", n)
	}
	b := make([]byte, n)
	_, err := io.ReadFull(c, b)
	return b, err
}

// socketExchange builds the step-frame exchange over the socket mesh.
func socketExchange(workers int, conns map[int]net.Conn) func(out [][]byte) ([][]byte, error) {
	return func(out [][]byte) ([][]byte, error) {
		// Writes drain on a separate goroutine: with every worker
		// sending before receiving, two full socket buffers would
		// deadlock a synchronous write-then-read at paper scale.
		werr := make(chan error, 1)
		go func() {
			for w, c := range conns {
				if err := writeBlob(c, out[w]); err != nil {
					werr <- fmt.Errorf("shard: frame to worker %d: %w", w, err)
					return
				}
			}
			werr <- nil
		}()
		in := make([][]byte, workers)
		for w, c := range conns {
			b, err := readBlob(c)
			if err != nil {
				return nil, fmt.Errorf("shard: frame from worker %d: %w", w, err)
			}
			in[w] = b
		}
		if err := <-werr; err != nil {
			return nil, err
		}
		return in, nil
	}
}

// shmExchange ships step frames as ctrlBlob control frames through a
// control-only ShmTransport. The handler runs on the per-peer ring
// reader goroutines with a borrowed payload, so it copies before
// queueing; channel depth 4 is generous — the step barrier keeps any
// peer at most one frame ahead.
func shmExchange(index, workers int, t *comm.ShmTransport) func(out [][]byte) ([][]byte, error) {
	in := make([]chan []byte, workers)
	for p := range in {
		in[p] = make(chan []byte, 4)
	}
	t.SetControlHandler(func(from int, kind uint32, payload []byte) {
		if kind != ctrlBlob {
			panic(fmt.Sprintf("shard: bigsim worker %d: unexpected control kind %d from %d", index, kind, from))
		}
		in[from] <- append([]byte(nil), payload...)
	})
	return func(out [][]byte) ([][]byte, error) {
		for p := 0; p < workers; p++ {
			if p == index {
				continue
			}
			if err := t.SendControl(p, ctrlBlob, out[p]); err != nil {
				return nil, fmt.Errorf("shard: frame to worker %d: %w", p, err)
			}
		}
		got := make([][]byte, workers)
		for p := 0; p < workers; p++ {
			if p == index {
				continue
			}
			got[p] = <-in[p]
		}
		return got, nil
	}
}

// RunBigSimWorker runs one slab of a sharded BigSim simulation over
// the worker fabric.
func RunBigSimWorker(index, workers int, fab Fabric, spec BigSimSpec) (*BigSimReport, error) {
	if spec.Steps < 1 {
		return nil, fmt.Errorf("shard: bigsim wants ≥ 1 step, got %d", spec.Steps)
	}
	sh, err := bigsim.NewShard(spec.Cfg, index, workers)
	if err != nil {
		return nil, err
	}
	var exchange func(out [][]byte) ([][]byte, error)
	if fab.Net == "shm" {
		t, err := comm.NewShmTransport(index, workers, nil, fab.Dir)
		if err != nil {
			return nil, err
		}
		exchange = shmExchange(index, workers, t)
		if err := t.Start(); err != nil {
			return nil, err
		}
		defer func() {
			t.Retire()
			t.Close()
		}()
	} else {
		exchange = socketExchange(workers, fab.Conns)
	}
	rep := &BigSimReport{Worker: index}
	for s := 0; s < spec.Steps; s++ {
		st, err := sh.Step(exchange)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, stepWire(st))
	}
	return rep, nil
}

// RunBigSimReference runs the same simulation in one process.
func RunBigSimReference(spec BigSimSpec) (*BigSimReport, error) {
	sim, err := bigsim.New(spec.Cfg)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	rep := &BigSimReport{Worker: -1}
	for _, st := range sim.Run(spec.Steps) {
		rep.Steps = append(rep.Steps, stepWire(st))
	}
	return rep, nil
}

// DecodeBigSimReports parses the subprocess outputs in worker order.
func DecodeBigSimReports(raws []json.RawMessage) ([]*BigSimReport, error) {
	reps := make([]*BigSimReport, len(raws))
	for i, raw := range raws {
		r := &BigSimReport{}
		if err := json.Unmarshal(raw, r); err != nil {
			return nil, fmt.Errorf("shard: bigsim report %d: %w", i, err)
		}
		reps[i] = r
	}
	return reps, nil
}

func init() {
	RegisterApp("bigsim", func(index, workers int, fab Fabric, payload []byte) (any, error) {
		var spec BigSimSpec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return nil, fmt.Errorf("shard: bigsim spec: %w", err)
		}
		return RunBigSimWorker(index, workers, fab, spec)
	})
}
