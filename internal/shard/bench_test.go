package shard

// Transport benchmarks behind make bench-transport: in-process versus
// cross-process Send cost, envelope coalescing per syscall, and the
// price of shipping an event-rank record across a socket. Both shard
// endpoints live in this process (real unix sockets, separate
// Networks), so the numbers include the full wire path — PUP encode,
// writev, read, decode — without subprocess-spawn noise.

import (
	"runtime"
	"testing"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/comm"
)

// spinUntil waits for the far endpoint, yielding and then briefly
// sleeping: on a single-CPU container a bare spin loop starves the
// socket goroutines, and a goroutine that never sleeps keeps the
// scheduler from blocking in netpoll at all — socket readiness would
// then surface only on sysmon's ~10 ms sweeps.
func spinUntil(pending func() int) {
	for i := 0; pending() == 0; i++ {
		if i < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// benchShards mirrors comm's twoShards helper for benchmarks: two
// 4-PE sharded networks joined by one unix socket.
func benchShards(b *testing.B) (n0, n1 *comm.Network, t0, t1 *comm.SocketTransport) {
	b.Helper()
	c0, c1 := pairConns(b)
	owner := func(pe int) int { return pe / 2 }
	lat := comm.LatencyModel{Alpha: 1000, BetaPerByte: 0.4}
	n0, n1 = comm.NewNetwork(4, lat), comm.NewNetwork(4, lat)
	t0, t1 = comm.NewSocketTransport(0, 2, owner), comm.NewSocketTransport(1, 2, owner)
	if err := t0.AddPeer(1, c0); err != nil {
		b.Fatal(err)
	}
	if err := t1.AddPeer(0, c1); err != nil {
		b.Fatal(err)
	}
	if err := t0.Attach(n0, 0, 2); err != nil {
		b.Fatal(err)
	}
	if err := t1.Attach(n1, 2, 4); err != nil {
		b.Fatal(err)
	}
	if err := t0.Start(); err != nil {
		b.Fatal(err)
	}
	if err := t1.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		t0.Retire()
		t1.Retire()
		t0.Close()
		t1.Close()
	})
	return n0, n1, t0, t1
}

// BenchmarkTransportSendLocal is the baseline: Send + Poll on the
// default in-process ring-buffer transport.
func BenchmarkTransportSendLocal(b *testing.B) {
	n := comm.NewNetwork(4, comm.LatencyModel{Alpha: 1000, BetaPerByte: 0.4})
	if err := n.Register(comm.EntityID(9), 1); err != nil {
		b.Fatal(err)
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
		spinUntil(dst.Pending)
		dst.Poll()
	}
}

// BenchmarkTransportSendCross sends PE0→PE2 across a real unix
// socket and waits for delivery on the far Network — one message per
// wire envelope, the anti-coalescing worst case.
func BenchmarkTransportSendCross(b *testing.B) {
	n0, n1, t0, _ := benchShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
		spinUntil(dst.Pending)
		dst.Poll()
	}
	b.StopTimer()
	st := t0.SocketStats()
	if st.WriteBatches > 0 {
		b.ReportMetric(float64(st.FramesSent)/float64(st.WriteBatches), "envelopes/syscall")
	}
}

// BenchmarkTransportSendCrossStream drives the same wire through the
// TRAM aggregator: buckets of coalesced payloads cross as single
// frames and the writer drains whole queues per writev, so the
// envelopes-per-syscall metric is what the coalescing buys.
func BenchmarkTransportSendCrossStream(b *testing.B) {
	n0, n1, t0, _ := benchShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	n0.EnableAggregation(comm.AggPolicy{MaxPayloads: 16})
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		if err := src.SendStream(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		b.Fatal(err)
	}
	for got < b.N {
		spinUntil(dst.Pending)
		dst.Poll()
		got++
	}
	b.StopTimer()
	st := t0.SocketStats()
	if st.WriteBatches > 0 {
		b.ReportMetric(float64(st.FramesSent)/float64(st.WriteBatches), "envelopes/syscall")
	}
	if s := n0.Snapshot(); s.RemotePayloads > 0 && s.RemoteEnvelopes > 0 {
		b.ReportMetric(float64(s.RemotePayloads)/float64(s.RemoteEnvelopes), "payloads/envelope")
	}
}

// BenchmarkCrossProcessMigration runs the full 2-worker Jacobi with
// the migration driver and charges the whole run to the ranks that
// crossed the socket — record pack, wire, install, reseek, and the
// directory traffic around them. ns/rank is the headline metric.
func BenchmarkCrossProcessMigration(b *testing.B) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 50, PEs: 4,
		HaloBytes: 8, WorkNs: 1000, BlockPlacement: true,
	}
	spec := JacobiSpec{Cfg: cfg, Migrate: 16}
	moved := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := runPairJacobi(b, spec)
		moved += reps[0].Moved + reps[1].Moved
	}
	b.StopTimer()
	if moved > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(moved), "ns/rank-moved")
		b.ReportMetric(float64(moved)/float64(b.N), "ranks-moved/op")
	}
}
