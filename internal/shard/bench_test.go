package shard

// Transport benchmarks behind make bench-transport: in-process versus
// cross-process Send cost, envelope coalescing per syscall, and the
// price of shipping an event-rank record across a socket. Both shard
// endpoints live in this process (real unix sockets, separate
// Networks), so the numbers include the full wire path — PUP encode,
// writev, read, decode — without subprocess-spawn noise.

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/core"
)

// spinUntil waits for the far endpoint, yielding and then briefly
// sleeping: on a single-CPU container a bare spin loop starves the
// socket goroutines, and a goroutine that never sleeps keeps the
// scheduler from blocking in netpoll at all — socket readiness would
// then surface only on sysmon's ~10 ms sweeps.
func spinUntil(pending func() int) {
	for i := 0; pending() == 0; i++ {
		if i < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// benchShards mirrors comm's twoShards helper for benchmarks: two
// 4-PE sharded networks joined by one unix socket.
func benchShards(b *testing.B) (n0, n1 *comm.Network, t0, t1 *comm.SocketTransport) {
	b.Helper()
	c0, c1 := pairConns(b)
	owner := func(pe int) int { return pe / 2 }
	lat := comm.LatencyModel{Alpha: 1000, BetaPerByte: 0.4}
	n0, n1 = comm.NewNetwork(4, lat), comm.NewNetwork(4, lat)
	t0, t1 = comm.NewSocketTransport(0, 2, owner), comm.NewSocketTransport(1, 2, owner)
	if err := t0.AddPeer(1, c0); err != nil {
		b.Fatal(err)
	}
	if err := t1.AddPeer(0, c1); err != nil {
		b.Fatal(err)
	}
	if err := t0.Attach(n0, 0, 2); err != nil {
		b.Fatal(err)
	}
	if err := t1.Attach(n1, 2, 4); err != nil {
		b.Fatal(err)
	}
	if err := t0.Start(); err != nil {
		b.Fatal(err)
	}
	if err := t1.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		t0.Retire()
		t1.Retire()
		t0.Close()
		t1.Close()
	})
	return n0, n1, t0, t1
}

// BenchmarkTransportSendLocal is the baseline: Send + Poll on the
// default in-process ring-buffer transport.
func BenchmarkTransportSendLocal(b *testing.B) {
	n := comm.NewNetwork(4, comm.LatencyModel{Alpha: 1000, BetaPerByte: 0.4})
	if err := n.Register(comm.EntityID(9), 1); err != nil {
		b.Fatal(err)
	}
	src, dst := n.Endpoint(0), n.Endpoint(1)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
		spinUntil(dst.Pending)
		dst.Poll()
	}
}

// reportWireMetrics turns the transport counters into the syscall-
// economy metrics: envelopes per write batch and bytes per syscall
// (frames per ring publish on the shm fabric, which never syscalls).
func reportWireMetrics(b *testing.B, st comm.SocketStats) {
	b.Helper()
	if st.WriteBatches > 0 {
		b.ReportMetric(float64(st.FramesSent)/float64(st.WriteBatches), "envelopes/syscall")
	}
	if st.WriteSyscalls > 0 {
		b.ReportMetric(float64(st.BytesWritten)/float64(st.WriteSyscalls), "bytes/syscall")
	}
}

// benchShmShards mirrors benchShards over the shared-memory fabric:
// two 4-PE sharded networks joined by mmap'd rings on tmpfs.
func benchShmShards(b *testing.B) (n0, n1 *comm.Network, t0, t1 *comm.ShmTransport) {
	b.Helper()
	dir, err := os.MkdirTemp(comm.ShmDir(), "migflow-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	if err := comm.CreateShmMesh(dir, 2, 0); err != nil {
		b.Fatal(err)
	}
	owner := func(pe int) int { return pe / 2 }
	lat := comm.LatencyModel{Alpha: 1000, BetaPerByte: 0.4}
	n0, n1 = comm.NewNetwork(4, lat), comm.NewNetwork(4, lat)
	if t0, err = comm.NewShmTransport(0, 2, owner, dir); err != nil {
		b.Fatal(err)
	}
	if t1, err = comm.NewShmTransport(1, 2, owner, dir); err != nil {
		b.Fatal(err)
	}
	if err := t0.Attach(n0, 0, 2); err != nil {
		b.Fatal(err)
	}
	if err := t1.Attach(n1, 2, 4); err != nil {
		b.Fatal(err)
	}
	if err := t0.Start(); err != nil {
		b.Fatal(err)
	}
	if err := t1.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		t0.Retire()
		t1.Retire()
		t0.Close()
		t1.Close()
	})
	return n0, n1, t0, t1
}

// BenchmarkTransportSendCross sends PE0→PE2 across a real unix
// socket and waits for delivery on the far Network — one message per
// wire envelope, the anti-coalescing worst case.
func BenchmarkTransportSendCross(b *testing.B) {
	n0, n1, t0, _ := benchShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
		spinUntil(dst.Pending)
		dst.Poll()
	}
	b.StopTimer()
	reportWireMetrics(b, t0.SocketStats())
}

// BenchmarkTransportSendCrossShm is the same ping-per-iteration
// workload over the shared-memory rings — the co-located wire-tax
// headline number against the socket baseline above.
func BenchmarkTransportSendCrossShm(b *testing.B) {
	n0, n1, t0, t1 := benchShmShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
		spinUntil(dst.Pending)
		dst.Poll()
	}
	b.StopTimer()
	reportWireMetrics(b, t0.SocketStats())
	// Receiver-side parks: how often the reader gave up spinning and
	// napped before the next frame landed.
	b.ReportMetric(float64(t1.SocketStats().Parks)/float64(b.N), "parks/op")
}

// BenchmarkTransportSendCrossStream drives the same wire through the
// TRAM aggregator: buckets of coalesced payloads cross as single
// frames and the writer drains whole queues per writev, so the
// envelopes-per-syscall metric is what the coalescing buys.
func BenchmarkTransportSendCrossStream(b *testing.B) {
	n0, n1, t0, _ := benchShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	n0.EnableAggregation(comm.AggPolicy{MaxPayloads: 16})
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		if err := src.SendStream(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		b.Fatal(err)
	}
	for got < b.N {
		spinUntil(dst.Pending)
		dst.Poll()
		got++
	}
	b.StopTimer()
	reportWireMetrics(b, t0.SocketStats())
	if s := n0.Snapshot(); s.RemotePayloads > 0 && s.RemoteEnvelopes > 0 {
		b.ReportMetric(float64(s.RemotePayloads)/float64(s.RemoteEnvelopes), "payloads/envelope")
	}
}

// BenchmarkTransportSendCrossStreamShm drives the TRAM aggregator
// over the shared-memory rings: coalesced frames publish with no
// syscalls at all.
func BenchmarkTransportSendCrossStreamShm(b *testing.B) {
	n0, n1, t0, _ := benchShmShards(b)
	for _, n := range []*comm.Network{n0, n1} {
		if err := n.Register(comm.EntityID(9), 2); err != nil {
			b.Fatal(err)
		}
	}
	n0.EnableAggregation(comm.AggPolicy{MaxPayloads: 16})
	src, dst := n0.Endpoint(0), n1.Endpoint(2)
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		if err := src.SendStream(&comm.Message{To: 9, From: 1, Data: data}); err != nil {
			b.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		b.Fatal(err)
	}
	for got < b.N {
		spinUntil(dst.Pending)
		dst.Poll()
		got++
	}
	b.StopTimer()
	reportWireMetrics(b, t0.SocketStats())
	if s := n0.Snapshot(); s.RemotePayloads > 0 && s.RemoteEnvelopes > 0 {
		b.ReportMetric(float64(s.RemotePayloads)/float64(s.RemoteEnvelopes), "payloads/envelope")
	}
}

// benchRecordPingPong isolates the migration protocol itself: two
// single-PE workers joined by a real fabric run a one-rank program
// parked at a plain Recv — the migratable steady state — and the
// bench shuttles that rank between them with the production
// MigrateRanks path. Each move is the full chain a mid-run migration
// pays: extract, record encode, wire frame, install, scheduler wake,
// re-park, and the ack back. ns/rank-moved here is pure protocol +
// fabric latency with no application compute charged to it (the
// Jacobi variants below give the under-live-traffic picture).
func benchRecordPingPong(b *testing.B, netKind string) {
	fabs := pairFabrics(b, netKind)
	// Rank 0 is the shuttle: parked at a plain Recv, the only
	// migratable rank in the job. Ranks 1-3 are ballast parked at a
	// Waitall (not a plain Recv, so never migratable) — they keep
	// every worker's job un-done so MigrateRanks keeps waiting for
	// the shuttle instead of declaring completion.
	prog := ampi.Call(func(pc *ampi.PC) ampi.Proc {
		if pc.Rank() == 0 {
			return ampi.Recv(1, 7, nil)
		}
		return ampi.Waitall(func(pc *ampi.PC) []*ampi.Req {
			return []*ampi.Req{pc.Irecv(0, 9)}
		})
	})
	build := func(m *core.Machine) (*ampi.Job, error) {
		return ampi.NewProgram(m, 4, ampi.Options{Mode: ampi.ModeEvent, BlockPlacement: true}, prog)
	}
	var ws [2]*Worker
	for i := range ws {
		w, err := NewWorker(i, 2, 2, fabs[i], build)
		if err != nil {
			b.Fatal(err)
		}
		ws[i] = w
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, w := range ws {
		go func(w *Worker) {
			defer wg.Done()
			w.Run()
		}(w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws[0].MigrateRanks(1, 1) != 1 {
			b.Fatal("forward move failed")
		}
		if ws[1].MigrateRanks(1, 0) != 1 {
			b.Fatal("return move failed")
		}
	}
	b.StopTimer()
	moved := ws[0].movedOut.Load() + ws[1].movedOut.Load()
	if moved > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(moved), "ns/rank-moved")
	}
	reportWireMetrics(b, ws[0].T.SocketStats())
	for ws[0].outstanding.Load() != 0 || ws[1].outstanding.Load() != 0 {
		runtime.Gosched()
	}
	if err := ws[0].T.Broadcast(ctrlStop, nil); err != nil {
		b.Fatal(err)
	}
	ws[0].enterStop()
	wg.Wait()
	for _, w := range ws {
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossProcessMigration is the socket-fabric migration cost.
func BenchmarkCrossProcessMigration(b *testing.B) { benchRecordPingPong(b, "unix") }

// BenchmarkCrossProcessMigrationShm is the same record protocol over
// shared-memory rings.
func BenchmarkCrossProcessMigrationShm(b *testing.B) { benchRecordPingPong(b, "shm") }

// benchMigrationJacobi runs the full 2-worker Jacobi with the
// migration driver racing it and charges the whole run to the ranks
// that crossed the fabric. The app's event-engine compute dominates
// this number on any fabric — it contextualizes the protocol
// benchmarks above, it does not isolate the wire.
func benchMigrationJacobi(b *testing.B, netKind string) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 50, PEs: 4,
		HaloBytes: 8, WorkNs: 1000, BlockPlacement: true,
	}
	spec := JacobiSpec{Cfg: cfg, Migrate: 16}
	moved := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := runPairJacobi(b, spec, netKind)
		moved += reps[0].Moved + reps[1].Moved
	}
	b.StopTimer()
	if moved > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(moved), "ns/rank-moved")
		b.ReportMetric(float64(moved)/float64(b.N), "ranks-moved/op")
	}
}

// BenchmarkCrossProcessMigrationJacobi is migration under live Jacobi
// traffic on the socket fabric.
func BenchmarkCrossProcessMigrationJacobi(b *testing.B) { benchMigrationJacobi(b, "unix") }

// BenchmarkCrossProcessMigrationJacobiShm is the same run over
// shared-memory rings.
func BenchmarkCrossProcessMigrationJacobiShm(b *testing.B) { benchMigrationJacobi(b, "shm") }
