// Package shard runs one Machine as a group of OS processes: each
// worker owns a contiguous PE range of the SAME machine configuration
// and bridges the rest over unix-domain or TCP sockets
// (comm.SocketTransport) or, for co-located workers, shared-memory
// rings (comm.ShmTransport). Every worker builds the identical job —
// directories, entity IDs, and the program tree are deterministic
// functions of the config — so the only cross-process state is
// message envelopes, migration records, and the control frames of the
// termination protocol. Virtual-time predictions are placement- and
// mode-invariant by construction (ampi/program.go), which is what
// makes a 2-process run's per-rank VT bitwise equal to the in-process
// run the equivalence suite compares against.
//
// Termination is the classic counting barrier adapted to migration:
// worker 0 coordinates. A worker reports DONE (with its install and
// acked-extract counters) whenever it is locally done — no unfinished
// local ranks, no extract awaiting its destination's ack — and the
// counters changed since its last report. The coordinator stops the
// run when every worker's latest report says done AND the global sum
// of installed records equals the global sum of acknowledged
// extracts: a record in flight (extracted but not yet installed, or
// installed but its rank still running) always leaves either the
// sums unequal or some worker un-done, so the barrier cannot trip
// while any rank is alive or in transit. Worker failure remains a
// hard error (transport policy): there is no restart or rebalance.
package shard

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/core"
)

// Control-frame kinds on the shard wire.
const (
	ctrlDoneReport uint32 = 1 // worker → coordinator: u64 installs, u64 acked extracts
	ctrlRecord     uint32 = 2 // migration record → destination worker
	ctrlMoved      uint32 = 3 // u32 rank, u32 toPE → workers not party to a move
	ctrlAck        uint32 = 4 // destination → source: record installed
	ctrlStop       uint32 = 5 // coordinator → all: global termination
	ctrlBlob       uint32 = 6 // bigsim step frame over the shm fabric
)

// Cut returns the first PE of worker i under the standard contiguous
// split of numPEs across workers (worker i owns [Cut(i), Cut(i+1))).
func Cut(numPEs, workers, i int) int { return i * numPEs / workers }

// OwnerOf maps a global PE to the worker owning it under Cut.
func OwnerOf(numPEs, workers, pe int) int {
	for w := 0; w < workers; w++ {
		if pe < Cut(numPEs, workers, w+1) {
			return w
		}
	}
	return workers - 1
}

// Worker is one process's share of a sharded job: its machine (local
// PE range), the job built on it, and the fabric transport (sockets
// or shared-memory rings) plus termination-protocol state.
type Worker struct {
	Index   int
	Workers int
	NumPEs  int
	M       *core.Machine
	Job     *ampi.Job
	T       comm.ShardTransport

	installs    atomic.Uint64 // records installed into this worker
	acked       atomic.Uint64 // this worker's extracts acknowledged
	outstanding atomic.Int64  // extracts shipped, ack pending
	movedOut    atomic.Int64

	stop atomic.Bool

	repMu    sync.Mutex
	lastRep  [2]uint64
	reported bool

	// Coordinator state (worker 0 only): the latest report per worker.
	coordMu   sync.Mutex
	peerDone  []bool
	peerInst  []uint64
	peerExtra []uint64
}

// fabricTransport builds the ShardTransport the fabric selects:
// shared-memory rings when fab.Net is "shm", a socket transport over
// fab.Conns otherwise.
func fabricTransport(index, workers int, owner func(pe int) int, fab Fabric) (comm.ShardTransport, error) {
	if fab.Net == "shm" {
		return comm.NewShmTransport(index, workers, owner, fab.Dir)
	}
	t := comm.NewSocketTransport(index, workers, owner)
	for p, c := range fab.Conns {
		if err := t.AddPeer(p, c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NewWorker builds worker index's shard: a machine owning PEs
// [Cut(index), Cut(index+1)) of numPEs, the transport over the
// rendezvous fabric, and the job produced by build on that machine.
// The transport is started; the job is not.
func NewWorker(index, workers, numPEs int, fab Fabric, build func(*core.Machine) (*ampi.Job, error)) (*Worker, error) {
	lo, hi := Cut(numPEs, workers, index), Cut(numPEs, workers, index+1)
	if hi <= lo {
		return nil, fmt.Errorf("shard: worker %d of %d owns no PEs (%d total)", index, workers, numPEs)
	}
	m, err := core.NewMachine(core.Config{NumPEs: numPEs, LocalPELo: lo, LocalPEHi: hi})
	if err != nil {
		return nil, err
	}
	t, err := fabricTransport(index, workers, func(pe int) int { return OwnerOf(numPEs, workers, pe) }, fab)
	if err != nil {
		return nil, err
	}
	if err := t.Attach(m.Network(), lo, hi); err != nil {
		return nil, err
	}
	job, err := build(m)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		Index: index, Workers: workers, NumPEs: numPEs,
		M: m, Job: job, T: t,
		peerDone: make([]bool, workers), peerInst: make([]uint64, workers), peerExtra: make([]uint64, workers),
	}
	t.SetControlHandler(w.control)
	if err := t.Start(); err != nil {
		return nil, err
	}
	return w, nil
}

// control dispatches shard-protocol frames; it runs on transport
// reader goroutines. Protocol violations are hard errors, matching
// the transport's failure policy.
func (w *Worker) control(from int, kind uint32, payload []byte) {
	switch kind {
	case ctrlRecord:
		if _, err := w.Job.ShardInstall(payload); err != nil {
			panic(fmt.Sprintf("shard: worker %d: installing record from worker %d: %v", w.Index, from, err))
		}
		w.installs.Add(1)
		if err := w.T.SendControl(from, ctrlAck, nil); err != nil {
			panic(fmt.Sprintf("shard: worker %d: ack to %d: %v", w.Index, from, err))
		}
		w.M.Wake()
	case ctrlMoved:
		if len(payload) < 8 {
			panic(fmt.Sprintf("shard: worker %d: short MOVED frame (%d bytes)", w.Index, len(payload)))
		}
		rank := int(binary.LittleEndian.Uint32(payload))
		toPE := int(binary.LittleEndian.Uint32(payload[4:]))
		if err := w.Job.ShardNoteMove(rank, toPE); err != nil {
			panic(fmt.Sprintf("shard: worker %d: MOVED(%d→%d): %v", w.Index, rank, toPE, err))
		}
	case ctrlAck:
		w.acked.Add(1)
		w.outstanding.Add(-1)
		w.M.Wake()
	case ctrlDoneReport:
		if len(payload) < 16 {
			panic(fmt.Sprintf("shard: worker %d: short DONE frame (%d bytes)", w.Index, len(payload)))
		}
		w.noteDone(from, binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]))
	case ctrlStop:
		w.enterStop()
	default:
		panic(fmt.Sprintf("shard: worker %d: unknown control kind %d from worker %d", w.Index, kind, from))
	}
}

// enterStop marks global termination: the transport is retired first
// so peers tearing down concurrently no longer count as link faults.
func (w *Worker) enterStop() {
	w.T.Retire()
	w.stop.Store(true)
	w.M.Wake()
}

// noteDone is the coordinator's half of the barrier (worker 0; its
// own reports come here directly).
func (w *Worker) noteDone(from int, installs, extracts uint64) {
	w.coordMu.Lock()
	w.peerDone[from] = true
	w.peerInst[from] = installs
	w.peerExtra[from] = extracts
	allDone, sumInst, sumExtra := true, uint64(0), uint64(0)
	for i := range w.peerDone {
		if !w.peerDone[i] {
			allDone = false
			break
		}
		sumInst += w.peerInst[i]
		sumExtra += w.peerExtra[i]
	}
	w.coordMu.Unlock()
	if allDone && sumInst == sumExtra && !w.stop.Load() {
		if err := w.T.Broadcast(ctrlStop, nil); err != nil {
			panic(fmt.Sprintf("shard: coordinator: broadcasting stop: %v", err))
		}
		w.enterStop()
	}
}

// doneCheck is the RunParallel completion callback: report local
// doneness (when it or the counters changed), return global stop.
func (w *Worker) doneCheck() bool {
	if w.Job.Done() && w.outstanding.Load() == 0 {
		rep := [2]uint64{w.installs.Load(), w.acked.Load()}
		w.repMu.Lock()
		fresh := !w.reported || rep != w.lastRep
		if fresh {
			w.reported, w.lastRep = true, rep
		}
		w.repMu.Unlock()
		if fresh {
			if w.Index == 0 {
				w.noteDone(0, rep[0], rep[1])
			} else {
				var buf [16]byte
				binary.LittleEndian.PutUint64(buf[:], rep[0])
				binary.LittleEndian.PutUint64(buf[8:], rep[1])
				if err := w.T.SendControl(0, ctrlDoneReport, buf[:]); err != nil {
					panic(fmt.Sprintf("shard: worker %d: DONE report: %v", w.Index, err))
				}
			}
		}
	}
	return w.stop.Load()
}

// Run starts the job and drives this worker's PEs until the global
// termination barrier trips.
func (w *Worker) Run() {
	w.Job.Start()
	w.M.RunParallel(w.doneCheck)
}

// Close flushes and tears the links down. Call after Run on every
// worker.
func (w *Worker) Close() error { return w.T.Close() }

// Backoff for MigrateRanks' unproductive scans, mirroring the shm
// reader's ladder: a few scheduler yields, then OS yields (a bare
// Gosched spin starves the netpoller and co-located worker processes
// of the very CPU that would make a rank migratable — on one core it
// degrades each wait to sysmon's 10ms forced preemption), then
// millisecond naps once the job has been quiet for a while.
const (
	migSpinYields = 16
	migYieldSpins = 256
)

// MigrateRanks extracts up to n local ranks (whichever are parked at
// a plain Recv when scanned) and ships them to toWorker's first PE,
// mid-run, concurrently with the job. Returns the count actually
// moved; it stops early if the job completes first. Safe to call from
// a goroutine racing Run — that is the point.
func (w *Worker) MigrateRanks(n, toWorker int) int {
	if toWorker == w.Index || toWorker < 0 || toWorker >= w.Workers {
		return 0
	}
	toPE := Cut(w.NumPEs, w.Workers, toWorker)
	moved, idle := 0, 0
	for moved < n && !w.stop.Load() && !w.Job.Done() {
		progressed := false
		for r := 0; r < w.Job.Size() && moved < n; r++ {
			if !w.Job.ShardMigratable(r) {
				continue
			}
			// The outstanding count must cover the extract itself:
			// ShardExtract drops the job's remaining counter, and a
			// done-report in the gap between that drop and the count
			// bump could trip the barrier with the record unsent.
			w.outstanding.Add(1)
			data, err := w.Job.ShardExtract(r, toPE)
			if err != nil {
				w.outstanding.Add(-1)
				continue // raced a resume; try the next rank
			}
			var mv [8]byte
			binary.LittleEndian.PutUint32(mv[:], uint32(r))
			binary.LittleEndian.PutUint32(mv[4:], uint32(toPE))
			for p := 0; p < w.Workers; p++ {
				if p != w.Index && p != toWorker {
					if err := w.T.SendControl(p, ctrlMoved, mv[:]); err != nil {
						panic(fmt.Sprintf("shard: worker %d: MOVED to %d: %v", w.Index, p, err))
					}
				}
			}
			if err := w.T.SendControl(toWorker, ctrlRecord, data); err != nil {
				panic(fmt.Sprintf("shard: worker %d: record to %d: %v", w.Index, toWorker, err))
			}
			moved++
			progressed = true
		}
		if progressed {
			idle = 0
			continue
		}
		idle++
		switch {
		case idle <= migSpinYields:
			runtime.Gosched()
		case idle <= migSpinYields+migYieldSpins:
			comm.OSYield()
		default:
			time.Sleep(time.Millisecond)
		}
	}
	w.movedOut.Add(int64(moved))
	return moved
}
