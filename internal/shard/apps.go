package shard

// The sharded applications: Jacobi and program-mode BT-MZ, each as a
// worker-side runner (one process's share) plus an in-process
// reference runner producing the same report shape. Reports carry
// float64 values as raw IEEE-754 bits so the equivalence suite can
// demand bitwise equality across process counts without any epsilon.

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/npb"
)

// RankVT is one rank's final virtual time as raw float64 bits.
type RankVT struct {
	Rank int
	Bits uint64
}

// RankCell is a Jacobi rank's final numeric state, bit-exact.
type RankCell struct {
	Rank             int
	X, Resid, Global uint64
}

// Report is what one worker (or the whole in-process reference run)
// returns: the final VT of every rank it owned at completion, app
// state, traffic counters, and socket-level stats.
type Report struct {
	Worker int
	Ranks  []RankVT
	Cells  []RankCell `json:",omitempty"`
	Moved  int64
	Net    comm.StatsSnapshot
	Sock   comm.SocketStats
}

// JacobiSpec parameterizes a sharded Jacobi run. Migrate > 0 asks
// worker 0 to extract that many parked ranks mid-run and ship them to
// worker 1 over the record protocol.
type JacobiSpec struct {
	Cfg     ampi.JacobiConfig
	Migrate int
}

// BTMZSpec parameterizes a sharded program-mode BT-MZ run.
type BTMZSpec struct {
	Params  npb.Params
	Migrate int
}

// cellSink is the concurrent Observe collector (PE goroutines call it).
type cellSink struct {
	mu    sync.Mutex
	cells []RankCell
}

func (s *cellSink) observe(rank int, c ampi.JacobiCell) {
	s.mu.Lock()
	s.cells = append(s.cells, RankCell{
		Rank: rank,
		X:    math.Float64bits(c.X), Resid: math.Float64bits(c.Resid), Global: math.Float64bits(c.Global),
	})
	s.mu.Unlock()
}

// report snapshots a worker after its run: owned ranks, counters.
func (w *Worker) report(cells []RankCell) *Report {
	rep := &Report{Worker: w.Index, Cells: cells, Moved: w.movedOut.Load()}
	for r := 0; r < w.Job.Size(); r++ {
		if w.Job.ShardOwns(r) {
			rep.Ranks = append(rep.Ranks, RankVT{Rank: r, Bits: math.Float64bits(w.Job.VT(r))})
		}
	}
	rep.Net = w.M.Network().Snapshot()
	rep.Sock = w.T.SocketStats()
	return rep
}

// runWorker drives one worker to global termination, racing the
// optional migration driver, then closes the links and reports.
func runWorker(w *Worker, migrate int, sink *cellSink) (*Report, error) {
	var wg sync.WaitGroup
	if migrate > 0 && w.Index == 0 && w.Workers > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.MigrateRanks(migrate, 1)
		}()
	}
	w.Run()
	wg.Wait()
	var cells []RankCell
	if sink != nil {
		sink.mu.Lock()
		cells = append(cells, sink.cells...)
		sink.mu.Unlock()
	}
	rep := w.report(cells)
	if err := w.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}

// RunJacobiWorker runs worker index's share of a sharded Jacobi job.
func RunJacobiWorker(index, workers int, fab Fabric, spec JacobiSpec) (*Report, error) {
	cfg := spec.Cfg
	sink := &cellSink{}
	cfg.Observe = sink.observe
	w, err := NewWorker(index, workers, cfg.PEs, fab, func(m *core.Machine) (*ampi.Job, error) {
		return ampi.NewJacobiOn(m, cfg)
	})
	if err != nil {
		return nil, err
	}
	return runWorker(w, spec.Migrate, sink)
}

// RunBTMZWorker runs worker index's share of a sharded program-mode
// BT-MZ job. Params.LB must be nil (the LB gate is a whole-machine
// barrier; sharded runs move ranks with the record protocol instead).
func RunBTMZWorker(index, workers int, fab Fabric, spec BTMZSpec) (*Report, error) {
	p := spec.Params
	if p.LB != nil {
		return nil, fmt.Errorf("shard: BT-MZ LB gate unsupported in sharded runs")
	}
	w, err := NewWorker(index, workers, p.NPEs, fab, func(m *core.Machine) (*ampi.Job, error) {
		return npb.ProgramJob(m, p)
	})
	if err != nil {
		return nil, err
	}
	return runWorker(w, spec.Migrate, nil)
}

// RunJacobiReference runs the identical Jacobi config in-process on
// the default ring-buffer transport and reports it in the same shape
// — the baseline the cross-process equivalence suite compares against.
func RunJacobiReference(cfg ampi.JacobiConfig) (*Report, error) {
	sink := &cellSink{}
	cfg.Observe = sink.observe
	m, job, err := ampi.NewJacobi(cfg)
	if err != nil {
		return nil, err
	}
	job.Run()
	if !job.Done() {
		return nil, fmt.Errorf("shard: reference Jacobi did not complete")
	}
	return referenceReport(m, job, sink.cells), nil
}

// RunBTMZReference is the in-process baseline for a sharded BT-MZ run.
func RunBTMZReference(p npb.Params) (*Report, error) {
	m, err := core.NewMachine(core.Config{NumPEs: p.NPEs})
	if err != nil {
		return nil, err
	}
	job, err := npb.ProgramJob(m, p)
	if err != nil {
		return nil, err
	}
	job.Run()
	if !job.Done() {
		return nil, fmt.Errorf("shard: reference BT-MZ did not complete")
	}
	return referenceReport(m, job, nil), nil
}

func referenceReport(m *core.Machine, job *ampi.Job, cells []RankCell) *Report {
	rep := &Report{Worker: -1, Cells: cells}
	for r := 0; r < job.Size(); r++ {
		rep.Ranks = append(rep.Ranks, RankVT{Rank: r, Bits: math.Float64bits(job.VT(r))})
	}
	rep.Net = m.Network().Snapshot()
	return rep
}

// Merged is the parent-side fusion of all workers' reports.
type Merged struct {
	VTBits      map[int]uint64
	Cells       map[int]RankCell
	Sent        uint64
	Forwards    uint64
	RemoteEnv   uint64
	RemoteBytes uint64
	Moved       int64
	PredictedNs float64 // max rank VT across the whole job
}

// MergeReports fuses per-worker reports, checking that completed-rank
// ownership exactly partitions [0, size): every rank reported once.
func MergeReports(reps []*Report, size int) (*Merged, error) {
	mg := &Merged{VTBits: make(map[int]uint64, size), Cells: make(map[int]RankCell)}
	for _, rep := range reps {
		for _, rv := range rep.Ranks {
			if _, dup := mg.VTBits[rv.Rank]; dup {
				return nil, fmt.Errorf("shard: rank %d reported by two workers", rv.Rank)
			}
			mg.VTBits[rv.Rank] = rv.Bits
			if vt := math.Float64frombits(rv.Bits); vt > mg.PredictedNs {
				mg.PredictedNs = vt
			}
		}
		for _, c := range rep.Cells {
			if _, dup := mg.Cells[c.Rank]; dup {
				return nil, fmt.Errorf("shard: rank %d cell reported twice", c.Rank)
			}
			mg.Cells[c.Rank] = c
		}
		mg.Sent += rep.Net.Sent
		mg.Forwards += rep.Net.Forwards
		mg.RemoteEnv += rep.Net.RemoteEnvelopes
		mg.RemoteBytes += rep.Net.RemoteBytes
		mg.Moved += rep.Moved
	}
	if len(mg.VTBits) != size {
		return nil, fmt.Errorf("shard: %d of %d ranks reported", len(mg.VTBits), size)
	}
	return mg, nil
}

// DecodeReports unmarshals the raw per-worker RESULT payloads a
// subprocess run returns.
func DecodeReports(raws []json.RawMessage) ([]*Report, error) {
	reps := make([]*Report, len(raws))
	for i, raw := range raws {
		reps[i] = &Report{}
		if err := json.Unmarshal(raw, reps[i]); err != nil {
			return nil, fmt.Errorf("shard: decoding worker %d report: %w", i, err)
		}
	}
	return reps, nil
}

func init() {
	RegisterApp("jacobi", func(index, workers int, fab Fabric, payload []byte) (any, error) {
		var spec JacobiSpec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return nil, err
		}
		return RunJacobiWorker(index, workers, fab, spec)
	})
	RegisterApp("btmz", func(index, workers int, fab Fabric, payload []byte) (any, error) {
		var spec BTMZSpec
		if err := json.Unmarshal(payload, &spec); err != nil {
			return nil, err
		}
		return RunBTMZWorker(index, workers, fab, spec)
	})
}
