package shard

// The cross-process equivalence suite: the same Jacobi/BT-MZ config
// run in-process (ring-buffer transport) and as 2 OS processes over
// sockets must produce bitwise-identical per-rank virtual times and
// numeric results — including runs that migrate event ranks across a
// live socket mid-flight. Worker processes re-enter through TestMain.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/bigsim"
	"migflow/internal/comm"
	"migflow/internal/core"
	"migflow/internal/npb"
)

func TestMain(m *testing.M) {
	if WorkerMain() {
		return // unreachable: WorkerMain exits, but keep the guard shape
	}
	os.Exit(m.Run())
}

// compareReports demands bitwise equality of the sharded run against
// the in-process reference: every rank's VT, every Jacobi cell, and
// the payload-send count.
func compareReports(t *testing.T, ref *Report, merged *Merged, size int) {
	t.Helper()
	refVT := make(map[int]uint64, size)
	for _, rv := range ref.Ranks {
		refVT[rv.Rank] = rv.Bits
	}
	if len(refVT) != size || len(merged.VTBits) != size {
		t.Fatalf("rank coverage: ref %d, sharded %d, want %d", len(refVT), len(merged.VTBits), size)
	}
	for r := 0; r < size; r++ {
		if refVT[r] != merged.VTBits[r] {
			t.Fatalf("rank %d VT differs: in-process %v, sharded %v",
				r, math.Float64frombits(refVT[r]), math.Float64frombits(merged.VTBits[r]))
		}
	}
	for _, c := range ref.Cells {
		got, ok := merged.Cells[c.Rank]
		if !ok {
			t.Fatalf("rank %d cell missing from sharded run", c.Rank)
		}
		if got.X != c.X || got.Resid != c.Resid || got.Global != c.Global {
			t.Fatalf("rank %d cell differs: in-process %+v, sharded %+v", c.Rank, c, got)
		}
	}
	if merged.Sent != ref.Net.Sent {
		t.Fatalf("payload sends differ: in-process %d, sharded %d", ref.Net.Sent, merged.Sent)
	}
}

// runSharded spawns the subprocess run and merges the reports.
func runSharded(t *testing.T, spec ProcSpec, size int) *Merged {
	t.Helper()
	raws, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := DecodeReports(raws)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeReports(reps, size)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestCrossProcessJacobiEquivalence runs randomized Jacobi configs
// in-process and as 2 OS processes over unix sockets; per-rank VT and
// final cell values must match bit for bit.
func TestCrossProcessJacobiEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		cfg := ampi.JacobiConfig{
			Mode:           ampi.ModeEvent,
			Ranks:          32 + rng.Intn(64),
			Iters:          4 + rng.Intn(12),
			PEs:            4,
			HaloBytes:      8 + 8*rng.Intn(16),
			WorkNs:         500 + float64(rng.Intn(2000)),
			WorkSkew:       float64(rng.Intn(3)),
			ReduceEvery:    rng.Intn(4),
			Overlap:        rng.Intn(2) == 1,
			BlockPlacement: rng.Intn(2) == 1,
			MsgOverheadNs:  float64(50 * rng.Intn(3)),
		}
		ref, err := RunJacobiReference(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
		compareReports(t, ref, merged, cfg.Ranks)
		if merged.RemoteEnv == 0 {
			t.Fatalf("trial %d: no envelopes crossed the socket — not a sharded run", trial)
		}
	}
}

// TestCrossProcessJacobiShm runs the equivalence check over the
// shared-memory fabric: 2 OS processes joined by mmap'd rings instead
// of sockets, same bitwise demands, and the RemoteEnv counter proves
// envelopes actually crossed the rings.
func TestCrossProcessJacobiShm(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 48, Iters: 10, PEs: 4,
		HaloBytes: 16, WorkNs: 800, ReduceEvery: 2, Overlap: true, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "shm", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
	if merged.RemoteEnv == 0 {
		t.Fatal("no envelopes crossed the rings — not a sharded run")
	}
}

// TestCrossProcessJacobiShmMigration ships event ranks across live
// shared-memory rings mid-run; per-rank VT must still match the
// in-process run bit for bit.
func TestCrossProcessJacobiShmMigration(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 40, PEs: 4,
		HaloBytes: 8, WorkNs: 1200, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "shm",
		Payload: JacobiSpec{Cfg: cfg, Migrate: 8}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
	t.Logf("migrated %d ranks across the rings", merged.Moved)
}

// TestCrossProcessJacobiTCP repeats one config over loopback TCP.
func TestCrossProcessJacobiTCP(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 48, Iters: 8, PEs: 4,
		HaloBytes: 16, WorkNs: 800, ReduceEvery: 2, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "tcp", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestCrossProcessJacobiMigration ships event ranks across a live
// socket mid-run (worker 0 extracts parked ranks, worker 1 installs
// and reseeks them); the per-rank VT must still match the in-process
// run bit for bit — migration is free in virtual time by design.
func TestCrossProcessJacobiMigration(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 40, PEs: 4,
		HaloBytes: 8, WorkNs: 1200, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix",
		Payload: JacobiSpec{Cfg: cfg, Migrate: 8}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
	t.Logf("migrated %d ranks across the socket", merged.Moved)
}

// TestCrossProcessJacobiLarge is the CI smoke scale: 4096 event ranks
// across 2 processes.
func TestCrossProcessJacobiLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke run")
	}
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 4096, Iters: 3, PEs: 8,
		HaloBytes: 8, WorkNs: 700, ReduceEvery: 3, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestCrossProcessBTMZEquivalence runs program-mode BT-MZ (graded
// zones, specific-source receives, periodic Allreduce) across 2
// processes and demands bitwise VT equality with the in-process run.
func TestCrossProcessBTMZEquivalence(t *testing.T) {
	p := npb.Params{
		Class: npb.GradedClass("T64", 8, 8, 1<<12, 8, 20),
		Mode:  ampi.ModeEvent, NProcs: 32, NPEs: 4, Steps: 6, ReduceEvery: 3, HaloBytes: 2048,
	}
	ref, err := RunBTMZReference(p)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "btmz", Workers: 2, Net: "unix", Payload: BTMZSpec{Params: p}}, p.NProcs)
	compareReports(t, ref, merged, p.NProcs)
}

// bigsimEqual demands two report step streams match bit for bit.
func bigsimEqual(t *testing.T, name string, ref, got *BigSimReport) {
	t.Helper()
	if len(ref.Steps) != len(got.Steps) {
		t.Fatalf("%s: %d steps vs %d", name, len(ref.Steps), len(got.Steps))
	}
	for i := range ref.Steps {
		if ref.Steps[i] != got.Steps[i] {
			t.Fatalf("%s: step %d differs: %+v vs %+v", name, i, ref.Steps[i], got.Steps[i])
		}
	}
}

// runBigSimSharded runs the subprocess fleet and checks every worker
// reconstructed the same machine-wide stream.
func runBigSimSharded(t *testing.T, spec BigSimSpec, workers int, netKind string) *BigSimReport {
	t.Helper()
	raws, err := Run(ProcSpec{App: "bigsim", Workers: workers, Net: netKind, Payload: spec})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := DecodeBigSimReports(raws)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps[1:] {
		bigsimEqual(t, "workers disagree", reps[0], rep)
	}
	return reps[0]
}

// TestCrossProcessBigSimEquivalence: the sharded simulator's per-step
// predictions must match the serial one bit for bit, with and without
// ghost aggregation.
func TestCrossProcessBigSimEquivalence(t *testing.T) {
	for _, agg := range []bool{false, true} {
		spec := BigSimSpec{
			Cfg: bigsim.Config{
				X: 10, Y: 8, Z: 4, SimPEs: 6, Mode: bigsim.ModeEvent,
				AtomsPerCell: 180, WorkPerAtomNs: 25, GhostBytes: 2048,
				Aggregate: agg,
			},
			Steps: 5,
		}
		ref, err := RunBigSimReference(spec)
		if err != nil {
			t.Fatal(err)
		}
		bigsimEqual(t, "serial vs sharded", ref, runBigSimSharded(t, spec, 2, "unix"))
	}
}

// TestCrossProcessBTMZShm repeats the BT-MZ equivalence over the
// shared-memory fabric.
func TestCrossProcessBTMZShm(t *testing.T) {
	p := npb.Params{
		Class: npb.GradedClass("T64", 8, 8, 1<<12, 8, 20),
		Mode:  ampi.ModeEvent, NProcs: 32, NPEs: 4, Steps: 6, ReduceEvery: 3, HaloBytes: 2048,
	}
	ref, err := RunBTMZReference(p)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "btmz", Workers: 2, Net: "shm", Payload: BTMZSpec{Params: p}}, p.NProcs)
	compareReports(t, ref, merged, p.NProcs)
}

// TestCrossProcessBigSimShm repeats the BigSim equivalence over the
// shared-memory fabric: step frames travel as control blobs through
// the rings, predictions must still match the serial run bit for bit.
func TestCrossProcessBigSimShm(t *testing.T) {
	for _, agg := range []bool{false, true} {
		spec := BigSimSpec{
			Cfg: bigsim.Config{
				X: 10, Y: 8, Z: 4, SimPEs: 6, Mode: bigsim.ModeEvent,
				AtomsPerCell: 180, WorkPerAtomNs: 25, GhostBytes: 2048,
				Aggregate: agg,
			},
			Steps: 5,
		}
		ref, err := RunBigSimReference(spec)
		if err != nil {
			t.Fatal(err)
		}
		bigsimEqual(t, "serial vs shm-sharded", ref, runBigSimSharded(t, spec, 2, "shm"))
	}
}

// TestCrossProcessBigSimPaperScale is the tentpole run: the paper's
// 200,000-target machine (Figure 11 scale) simulated by 2 OS
// processes, predictions bitwise-identical to 1 process.
func TestCrossProcessBigSimPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	spec := BigSimSpec{
		Cfg: bigsim.Config{
			X: 100, Y: 50, Z: 40, SimPEs: 16, Mode: bigsim.ModeEvent,
			AtomsPerCell: 200, WorkPerAtomNs: 25, GhostBytes: 2048,
			Aggregate: true,
		},
		Steps: 3,
	}
	ref, err := RunBigSimReference(spec)
	if err != nil {
		t.Fatal(err)
	}
	bigsimEqual(t, "serial vs sharded", ref, runBigSimSharded(t, spec, 2, "unix"))
}

// pairConns builds one real unix-socket connection pair in-process.
func pairConns(tb testing.TB) (net.Conn, net.Conn) {
	tb.Helper()
	l, err := net.Listen("unix", filepath.Join(tb.TempDir(), "p.sock"))
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		ch <- c
	}()
	dialed, err := net.Dial("unix", l.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	accepted := <-ch
	if accepted == nil {
		tb.Fatal("accept failed")
	}
	return dialed, accepted
}

// pairFabrics builds a two-worker fabric for an in-process run: real
// unix sockets, or a shared-memory ring mesh on tmpfs (rings on a
// disk-backed temp dir pay writeback page faults per publish).
func pairFabrics(tb testing.TB, netKind string) [2]Fabric {
	tb.Helper()
	if netKind == "shm" {
		dir, err := os.MkdirTemp(comm.ShmDir(), "migflow-test-*")
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { os.RemoveAll(dir) })
		if err := comm.CreateShmMesh(dir, 2, 0); err != nil {
			tb.Fatal(err)
		}
		return [2]Fabric{{Net: "shm", Dir: dir}, {Net: "shm", Dir: dir}}
	}
	c0, c1 := pairConns(tb)
	return [2]Fabric{
		{Net: netKind, Conns: map[int]net.Conn{1: c0}},
		{Net: netKind, Conns: map[int]net.Conn{0: c1}},
	}
}

// runPairJacobi drives both shard workers inside this test process
// over a real fabric (socket or shm rings) — the configuration the
// race detector can see into, unlike subprocess runs.
func runPairJacobi(tb testing.TB, spec JacobiSpec, netKind string) [2]*Report {
	tb.Helper()
	fabs := pairFabrics(tb, netKind)
	var reps [2]*Report
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		reps[0], errs[0] = RunJacobiWorker(0, 2, fabs[0], spec)
	}()
	go func() {
		defer wg.Done()
		reps[1], errs[1] = RunJacobiWorker(1, 2, fabs[1], spec)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("worker %d: %v", i, err)
		}
	}
	return reps
}

// TestInProcessPairEquivalence runs the base sharded protocol (no
// migration) with both workers in this process under -race.
func TestInProcessPairEquivalence(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 32, Iters: 6, PEs: 4,
		HaloBytes: 8, WorkNs: 900, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := runPairJacobi(t, JacobiSpec{Cfg: cfg}, "unix")
	merged, err := MergeReports(reps[:], cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestInProcessPairMigration runs the full sharded protocol — both
// workers in this process, so -race watches every interleaving —
// with the migration driver racing the job, over both fabrics.
func TestInProcessPairMigration(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 40, PEs: 4,
		HaloBytes: 8, WorkNs: 1000, ReduceEvery: 0, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, netKind := range []string{"unix", "shm"} {
		t.Run(netKind, func(t *testing.T) {
			reps := runPairJacobi(t, JacobiSpec{Cfg: cfg, Migrate: 6}, netKind)
			merged, err := MergeReports(reps[:], cfg.Ranks)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, ref, merged, cfg.Ranks)
			t.Logf("moved %d ranks worker0→worker1 over %s", merged.Moved, netKind)
		})
	}
}

// TestShardedRejectsULT: sharded machines support event mode only —
// ULT stacks hold raw pointers no wire codec can ship.
func TestShardedRejectsULT(t *testing.T) {
	c0, c1 := pairConns(t)
	defer c0.Close()
	defer c1.Close()
	cfg := ampi.JacobiConfig{Mode: ampi.ModeULT, Ranks: 8, Iters: 2, PEs: 4}
	_, err := NewWorker(0, 2, 4, Fabric{Net: "unix", Conns: map[int]net.Conn{1: c0}}, func(m *core.Machine) (*ampi.Job, error) {
		return ampi.NewJacobiOn(m, cfg)
	})
	if err == nil {
		t.Fatal("ULT mode must be rejected on a sharded machine")
	}
}

// meshConns builds the full pairwise connection mesh for n in-process
// workers.
func meshConns(tb testing.TB, n int) []map[int]net.Conn {
	tb.Helper()
	conns := make([]map[int]net.Conn, n)
	for i := range conns {
		conns[i] = map[int]net.Conn{}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ci, cj := pairConns(tb)
			conns[i][j] = ci
			conns[j][i] = cj
		}
	}
	return conns
}

// delayedRecordMigrate extracts one specific rank and ships it to
// toWorker, but holds the record back for delay after the directory
// has flipped and the MOVED notices have gone out. That manufactures
// the first-migration race window on purpose: while the record sits
// here, the source's own re-routed sends and any third party's
// direct sends reach the destination before ShardInstall, with the
// destination's migEpoch still zero. Bookkeeping mirrors
// MigrateRanks so the termination barrier stays sound.
func delayedRecordMigrate(w *Worker, rank, toWorker int, delay time.Duration) bool {
	toPE := Cut(w.NumPEs, w.Workers, toWorker)
	for !w.stop.Load() && !w.Job.Done() {
		if !w.Job.ShardMigratable(rank) {
			runtime.Gosched()
			continue
		}
		w.outstanding.Add(1)
		data, err := w.Job.ShardExtract(rank, toPE)
		if err != nil {
			w.outstanding.Add(-1)
			continue // raced a resume; rank will park again
		}
		var mv [8]byte
		binary.LittleEndian.PutUint32(mv[:], uint32(rank))
		binary.LittleEndian.PutUint32(mv[4:], uint32(toPE))
		for p := 0; p < w.Workers; p++ {
			if p != w.Index && p != toWorker {
				if err := w.T.SendControl(p, ctrlMoved, mv[:]); err != nil {
					panic(err)
				}
			}
		}
		time.Sleep(delay)
		if err := w.T.SendControl(toWorker, ctrlRecord, data); err != nil {
			panic(err)
		}
		w.movedOut.Add(1)
		return true
	}
	return false
}

// TestRecordRaceNotYetInstalled is the regression for the
// first-migration delivery race: worker 0 moves its boundary rank 7
// (block placement, 24 ranks / 6 PEs: worker 0 owns ranks 0–7) to
// worker 2, but the record is delayed 150ms while halo traffic keeps
// flowing — rank 6's re-routed sends from worker 0 and rank 8's
// direct sends from worker 1 (told by MOVED) hit worker 2 before the
// record installs, with worker 2's migEpoch still zero. deliver must
// bounce them through the directory until the table flips; absorbing
// one into the not-yet-installed slot desyncs the sequenced stream
// and hangs the run (caught by the watchdog). Results must still be
// bitwise-identical to the in-process reference.
func TestRecordRaceNotYetInstalled(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 24, Iters: 40, PEs: 6,
		HaloBytes: 8, WorkNs: 1000, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 3
	conns := meshConns(t, workers)
	reps := make([]*Report, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink := &cellSink{}
			c := cfg
			c.Observe = sink.observe
			w, err := NewWorker(i, workers, c.PEs, Fabric{Net: "unix", Conns: conns[i]}, func(m *core.Machine) (*ampi.Job, error) {
				return ampi.NewJacobiOn(m, c)
			})
			if err != nil {
				errs[i] = err
				return
			}
			var mig sync.WaitGroup
			if i == 0 {
				mig.Add(1)
				go func() {
					defer mig.Done()
					delayedRecordMigrate(w, 7, 2, 150*time.Millisecond)
				}()
			}
			w.Run()
			mig.Wait()
			sink.mu.Lock()
			cells := append([]RankCell(nil), sink.cells...)
			sink.mu.Unlock()
			reps[i] = w.report(cells)
			errs[i] = w.Close()
		}(i)
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("sharded run hung: a pre-install delivery was absorbed instead of bounced")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	merged, err := MergeReports(reps, cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, ref, merged, cfg.Ranks)
	if merged.Moved != 1 {
		t.Fatalf("moved %d ranks, want 1", merged.Moved)
	}
}

// TestCutPartition: the PE split is a partition for awkward shapes.
func TestCutPartition(t *testing.T) {
	for _, tc := range [][2]int{{4, 2}, {7, 3}, {16, 5}, {3, 2}} {
		numPEs, workers := tc[0], tc[1]
		for pe := 0; pe < numPEs; pe++ {
			w := OwnerOf(numPEs, workers, pe)
			if pe < Cut(numPEs, workers, w) || pe >= Cut(numPEs, workers, w+1) {
				t.Fatalf("PE %d not in worker %d's range (%d PEs, %d workers)", pe, w, numPEs, workers)
			}
		}
	}
}
