package shard

// The cross-process equivalence suite: the same Jacobi/BT-MZ config
// run in-process (ring-buffer transport) and as 2 OS processes over
// sockets must produce bitwise-identical per-rank virtual times and
// numeric results — including runs that migrate event ranks across a
// live socket mid-flight. Worker processes re-enter through TestMain.

import (
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"migflow/internal/ampi"
	"migflow/internal/bigsim"
	"migflow/internal/core"
	"migflow/internal/npb"
)

func TestMain(m *testing.M) {
	if WorkerMain() {
		return // unreachable: WorkerMain exits, but keep the guard shape
	}
	os.Exit(m.Run())
}

// compareReports demands bitwise equality of the sharded run against
// the in-process reference: every rank's VT, every Jacobi cell, and
// the payload-send count.
func compareReports(t *testing.T, ref *Report, merged *Merged, size int) {
	t.Helper()
	refVT := make(map[int]uint64, size)
	for _, rv := range ref.Ranks {
		refVT[rv.Rank] = rv.Bits
	}
	if len(refVT) != size || len(merged.VTBits) != size {
		t.Fatalf("rank coverage: ref %d, sharded %d, want %d", len(refVT), len(merged.VTBits), size)
	}
	for r := 0; r < size; r++ {
		if refVT[r] != merged.VTBits[r] {
			t.Fatalf("rank %d VT differs: in-process %v, sharded %v",
				r, math.Float64frombits(refVT[r]), math.Float64frombits(merged.VTBits[r]))
		}
	}
	for _, c := range ref.Cells {
		got, ok := merged.Cells[c.Rank]
		if !ok {
			t.Fatalf("rank %d cell missing from sharded run", c.Rank)
		}
		if got.X != c.X || got.Resid != c.Resid || got.Global != c.Global {
			t.Fatalf("rank %d cell differs: in-process %+v, sharded %+v", c.Rank, c, got)
		}
	}
	if merged.Sent != ref.Net.Sent {
		t.Fatalf("payload sends differ: in-process %d, sharded %d", ref.Net.Sent, merged.Sent)
	}
}

// runSharded spawns the subprocess run and merges the reports.
func runSharded(t *testing.T, spec ProcSpec, size int) *Merged {
	t.Helper()
	raws, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := DecodeReports(raws)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeReports(reps, size)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestCrossProcessJacobiEquivalence runs randomized Jacobi configs
// in-process and as 2 OS processes over unix sockets; per-rank VT and
// final cell values must match bit for bit.
func TestCrossProcessJacobiEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		cfg := ampi.JacobiConfig{
			Mode:           ampi.ModeEvent,
			Ranks:          32 + rng.Intn(64),
			Iters:          4 + rng.Intn(12),
			PEs:            4,
			HaloBytes:      8 + 8*rng.Intn(16),
			WorkNs:         500 + float64(rng.Intn(2000)),
			WorkSkew:       float64(rng.Intn(3)),
			ReduceEvery:    rng.Intn(4),
			Overlap:        rng.Intn(2) == 1,
			BlockPlacement: rng.Intn(2) == 1,
			MsgOverheadNs:  float64(50 * rng.Intn(3)),
		}
		ref, err := RunJacobiReference(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
		compareReports(t, ref, merged, cfg.Ranks)
		if merged.RemoteEnv == 0 {
			t.Fatalf("trial %d: no envelopes crossed the socket — not a sharded run", trial)
		}
	}
}

// TestCrossProcessJacobiTCP repeats one config over loopback TCP.
func TestCrossProcessJacobiTCP(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 48, Iters: 8, PEs: 4,
		HaloBytes: 16, WorkNs: 800, ReduceEvery: 2, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "tcp", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestCrossProcessJacobiMigration ships event ranks across a live
// socket mid-run (worker 0 extracts parked ranks, worker 1 installs
// and reseeks them); the per-rank VT must still match the in-process
// run bit for bit — migration is free in virtual time by design.
func TestCrossProcessJacobiMigration(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 40, PEs: 4,
		HaloBytes: 8, WorkNs: 1200, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix",
		Payload: JacobiSpec{Cfg: cfg, Migrate: 8}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
	t.Logf("migrated %d ranks across the socket", merged.Moved)
}

// TestCrossProcessJacobiLarge is the CI smoke scale: 4096 event ranks
// across 2 processes.
func TestCrossProcessJacobiLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke run")
	}
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 4096, Iters: 3, PEs: 8,
		HaloBytes: 8, WorkNs: 700, ReduceEvery: 3, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "jacobi", Workers: 2, Net: "unix", Payload: JacobiSpec{Cfg: cfg}}, cfg.Ranks)
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestCrossProcessBTMZEquivalence runs program-mode BT-MZ (graded
// zones, specific-source receives, periodic Allreduce) across 2
// processes and demands bitwise VT equality with the in-process run.
func TestCrossProcessBTMZEquivalence(t *testing.T) {
	p := npb.Params{
		Class: npb.GradedClass("T64", 8, 8, 1<<12, 8, 20),
		Mode:  ampi.ModeEvent, NProcs: 32, NPEs: 4, Steps: 6, ReduceEvery: 3, HaloBytes: 2048,
	}
	ref, err := RunBTMZReference(p)
	if err != nil {
		t.Fatal(err)
	}
	merged := runSharded(t, ProcSpec{App: "btmz", Workers: 2, Net: "unix", Payload: BTMZSpec{Params: p}}, p.NProcs)
	compareReports(t, ref, merged, p.NProcs)
}

// bigsimEqual demands two report step streams match bit for bit.
func bigsimEqual(t *testing.T, name string, ref, got *BigSimReport) {
	t.Helper()
	if len(ref.Steps) != len(got.Steps) {
		t.Fatalf("%s: %d steps vs %d", name, len(ref.Steps), len(got.Steps))
	}
	for i := range ref.Steps {
		if ref.Steps[i] != got.Steps[i] {
			t.Fatalf("%s: step %d differs: %+v vs %+v", name, i, ref.Steps[i], got.Steps[i])
		}
	}
}

// runBigSimSharded runs the subprocess fleet and checks every worker
// reconstructed the same machine-wide stream.
func runBigSimSharded(t *testing.T, spec BigSimSpec, workers int, netKind string) *BigSimReport {
	t.Helper()
	raws, err := Run(ProcSpec{App: "bigsim", Workers: workers, Net: netKind, Payload: spec})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := DecodeBigSimReports(raws)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps[1:] {
		bigsimEqual(t, "workers disagree", reps[0], rep)
	}
	return reps[0]
}

// TestCrossProcessBigSimEquivalence: the sharded simulator's per-step
// predictions must match the serial one bit for bit, with and without
// ghost aggregation.
func TestCrossProcessBigSimEquivalence(t *testing.T) {
	for _, agg := range []bool{false, true} {
		spec := BigSimSpec{
			Cfg: bigsim.Config{
				X: 10, Y: 8, Z: 4, SimPEs: 6, Mode: bigsim.ModeEvent,
				AtomsPerCell: 180, WorkPerAtomNs: 25, GhostBytes: 2048,
				Aggregate: agg,
			},
			Steps: 5,
		}
		ref, err := RunBigSimReference(spec)
		if err != nil {
			t.Fatal(err)
		}
		bigsimEqual(t, "serial vs sharded", ref, runBigSimSharded(t, spec, 2, "unix"))
	}
}

// TestCrossProcessBigSimPaperScale is the tentpole run: the paper's
// 200,000-target machine (Figure 11 scale) simulated by 2 OS
// processes, predictions bitwise-identical to 1 process.
func TestCrossProcessBigSimPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	spec := BigSimSpec{
		Cfg: bigsim.Config{
			X: 100, Y: 50, Z: 40, SimPEs: 16, Mode: bigsim.ModeEvent,
			AtomsPerCell: 200, WorkPerAtomNs: 25, GhostBytes: 2048,
			Aggregate: true,
		},
		Steps: 3,
	}
	ref, err := RunBigSimReference(spec)
	if err != nil {
		t.Fatal(err)
	}
	bigsimEqual(t, "serial vs sharded", ref, runBigSimSharded(t, spec, 2, "unix"))
}

// pairConns builds one real unix-socket connection pair in-process.
func pairConns(tb testing.TB) (net.Conn, net.Conn) {
	tb.Helper()
	l, err := net.Listen("unix", filepath.Join(tb.TempDir(), "p.sock"))
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		ch <- c
	}()
	dialed, err := net.Dial("unix", l.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	accepted := <-ch
	if accepted == nil {
		tb.Fatal("accept failed")
	}
	return dialed, accepted
}

// runPairJacobi drives both shard workers inside this test process
// over a real socket — the configuration the race detector can see
// into, unlike subprocess runs.
func runPairJacobi(tb testing.TB, spec JacobiSpec) [2]*Report {
	tb.Helper()
	c0, c1 := pairConns(tb)
	var reps [2]*Report
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		reps[0], errs[0] = RunJacobiWorker(0, 2, map[int]net.Conn{1: c0}, spec)
	}()
	go func() {
		defer wg.Done()
		reps[1], errs[1] = RunJacobiWorker(1, 2, map[int]net.Conn{0: c1}, spec)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tb.Fatalf("worker %d: %v", i, err)
		}
	}
	return reps
}

// TestInProcessPairEquivalence runs the base sharded protocol (no
// migration) with both workers in this process under -race.
func TestInProcessPairEquivalence(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 32, Iters: 6, PEs: 4,
		HaloBytes: 8, WorkNs: 900, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := runPairJacobi(t, JacobiSpec{Cfg: cfg})
	merged, err := MergeReports(reps[:], cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, ref, merged, cfg.Ranks)
}

// TestInProcessPairMigration runs the full sharded protocol — both
// workers in this process, so -race watches every interleaving —
// with the migration driver racing the job.
func TestInProcessPairMigration(t *testing.T) {
	cfg := ampi.JacobiConfig{
		Mode: ampi.ModeEvent, Ranks: 64, Iters: 40, PEs: 4,
		HaloBytes: 8, WorkNs: 1000, ReduceEvery: 0, BlockPlacement: true,
	}
	ref, err := RunJacobiReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := runPairJacobi(t, JacobiSpec{Cfg: cfg, Migrate: 6})
	merged, err := MergeReports(reps[:], cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, ref, merged, cfg.Ranks)
	t.Logf("moved %d ranks worker0→worker1", merged.Moved)
}

// TestShardedRejectsULT: sharded machines support event mode only —
// ULT stacks hold raw pointers no wire codec can ship.
func TestShardedRejectsULT(t *testing.T) {
	c0, c1 := pairConns(t)
	defer c0.Close()
	defer c1.Close()
	cfg := ampi.JacobiConfig{Mode: ampi.ModeULT, Ranks: 8, Iters: 2, PEs: 4}
	_, err := NewWorker(0, 2, 4, map[int]net.Conn{1: c0}, func(m *core.Machine) (*ampi.Job, error) {
		return ampi.NewJacobiOn(m, cfg)
	})
	if err == nil {
		t.Fatal("ULT mode must be rejected on a sharded machine")
	}
}

// TestCutPartition: the PE split is a partition for awkward shapes.
func TestCutPartition(t *testing.T) {
	for _, tc := range [][2]int{{4, 2}, {7, 3}, {16, 5}, {3, 2}} {
		numPEs, workers := tc[0], tc[1]
		for pe := 0; pe < numPEs; pe++ {
			w := OwnerOf(numPEs, workers, pe)
			if pe < Cut(numPEs, workers, w) || pe >= Cut(numPEs, workers, w+1) {
				t.Fatalf("PE %d not in worker %d's range (%d PEs, %d workers)", pe, w, numPEs, workers)
			}
		}
	}
}
