// Bigsim regenerates Figure 11: BigSim simulation time per step for a
// fixed target machine across simulating-PE counts. The full paper
// configuration (200,000 target processors) is reachable with
// -x 63 -y 63 -z 51 (or -x 64 -y 56 -z 56); with -mode event it fits
// in a few hundred MB, since event-driven flows carry no stacks.
//
// -mode selects the execution backend for every target processor:
//
//	ult    one user-level thread (parked goroutine) per target — the
//	       paper's heavyweight-but-general flow (default)
//	event  each target is a state struct dispatched inline by its
//	       simulating PE — the paper's cheapest flow
//	both   run each PE count through both backends and print the
//	       ULT-vs-event comparison columns
//
// -footprint additionally reports per-flow resident bytes and
// goroutines for the selected backend(s).
//
// Usage: bigsim [-x 20 -y 20 -z 10] [-steps 5] [-pes 1,2,4,8,16,32,64]
// [-mode ult|event|both] [-agg] [-footprint]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"migflow/internal/bigsim"
	"migflow/internal/harness"
)

func main() {
	x := flag.Int("x", 20, "target torus X")
	y := flag.Int("y", 20, "target torus Y")
	z := flag.Int("z", 10, "target torus Z")
	steps := flag.Int("steps", 5, "MD timesteps")
	pes := flag.String("pes", "4,8,16,32,64", "comma-separated simulating PE counts")
	agg := flag.Bool("agg", false, "coalesce cross-PE ghost traffic into per-destination envelopes")
	mode := flag.String("mode", bigsim.ModeULT, "execution backend: ult, event, or both")
	footprint := flag.Bool("footprint", false, "report per-flow resident bytes and goroutines")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*pes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -pes entry %q: %v", s, err)
		}
		counts = append(counts, n)
	}
	var modes []string
	switch *mode {
	case bigsim.ModeULT, bigsim.ModeEvent:
		modes = []string{*mode}
		if _, err := harness.Figure11Backend(os.Stdout, *x, *y, *z, *steps, counts, *agg, *mode); err != nil {
			log.Fatal(err)
		}
	case "both":
		modes = []string{bigsim.ModeULT, bigsim.ModeEvent}
		if _, err := harness.Figure11Mode(os.Stdout, *x, *y, *z, *steps, counts, *agg); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("bad -mode %q: want ult, event, or both", *mode)
	}
	if *footprint {
		fmt.Printf("\nper-flow footprint (%dx%dx%d targets, %d simPEs, after one step):\n", *x, *y, *z, counts[0])
		for _, m := range modes {
			cfg := bigsim.DefaultConfig()
			cfg.X, cfg.Y, cfg.Z, cfg.SimPEs = *x, *y, *z, counts[0]
			cfg.Aggregate = *agg
			cfg.Mode = m
			bpf, gpf, err := harness.FlowFootprint(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-7s %5.2f goroutines/flow %10.0f B/flow\n", m+":", gpf, bpf)
		}
	}
	fmt.Println("\n(Figure 11 used 200,000 target processors on LeMieux; -x 63 -y 63 -z 51")
	fmt.Println(" reproduces that scale — with -mode event in ~100 B per target, where the")
	fmt.Println(" ULT backend needs a goroutine stack and two channels per target.)")
}
