// Bigsim regenerates Figure 11: BigSim simulation time per step for a
// fixed target machine across simulating-PE counts. The full paper
// configuration (200,000 target processors) is reachable with
// -x 63 -y 63 -z 51; the default is laptop-sized.
//
// Usage: bigsim [-x 20 -y 20 -z 10] [-steps 5] [-pes 1,2,4,8,16,32,64]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"migflow/internal/harness"
)

func main() {
	x := flag.Int("x", 20, "target torus X")
	y := flag.Int("y", 20, "target torus Y")
	z := flag.Int("z", 10, "target torus Z")
	steps := flag.Int("steps", 5, "MD timesteps")
	pes := flag.String("pes", "4,8,16,32,64", "comma-separated simulating PE counts")
	agg := flag.Bool("agg", false, "coalesce cross-PE ghost traffic into per-destination envelopes")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*pes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -pes entry %q: %v", s, err)
		}
		counts = append(counts, n)
	}
	if _, err := harness.Figure11Opt(os.Stdout, *x, *y, *z, *steps, counts, *agg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(Figure 11 used 200,000 target processors on LeMieux; -x 63 -y 63 -z 51")
	fmt.Println(" reproduces that scale given a few GB of memory for the 202k ULTs.)")
}
