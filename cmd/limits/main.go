// Limits regenerates Table 2: the practical limits on the number of
// processes, kernel threads and user-level threads, probed by
// creating flows against each platform's simulated kernel until
// creation fails.
//
// Usage: limits [-cap 100000]
package main

import (
	"flag"
	"log"
	"os"

	"migflow/internal/harness"
)

func main() {
	cap := flag.Int("cap", 100000, "probe ceiling (paper reports 'N+' at the ceiling)")
	flag.Parse()
	if _, err := harness.Table2(os.Stdout, *cap); err != nil {
		log.Fatal(err)
	}
}
