// Btmz regenerates Figure 12: the NAS BT-MZ multi-zone benchmark with
// and without AMPI thread-migration load balancing, across the
// paper's problem classes and rank/PE configurations.
//
// Usage: btmz [-steps 20] [-lb greedy]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"migflow/internal/harness"
	"migflow/internal/loadbalance"
	"migflow/internal/npb"
	"migflow/internal/trace"
)

func main() {
	steps := flag.Int("steps", 20, "solver timesteps")
	lbName := flag.String("lb", "greedy", "load balancer: greedy | refine | rotate")
	showTrace := flag.Bool("trace", false, "print per-PE utilization traces for B.64,8PE")
	flag.Parse()

	if *showTrace {
		traceReport(*steps, *lbName)
		return
	}
	if *lbName == "greedy" {
		if _, err := harness.Figure12(os.Stdout, *steps); err != nil {
			log.Fatal(err)
		}
		return
	}
	strat, err := loadbalance.ByName(*lbName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BT-MZ with %s load balancing\n", strat.Name())
	fmt.Printf("%-10s %14s %14s %9s\n", "case", "noLB time(ms)", "LB time(ms)", "speedup")
	for _, p := range npb.Cases(*steps, nil) {
		base, err := npb.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		q := p
		q.LB = strat
		r, err := npb.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.2f %14.2f %8.2fx\n",
			p.Label(), base.TimeNs/1e6, r.TimeNs/1e6, base.TimeNs/r.TimeNs)
	}
}

// traceReport prints per-PE utilization for the worst Figure 12 case
// with and without the chosen balancer — a Projections-style summary
// from the trace subsystem.
func traceReport(steps int, lbName string) {
	strat, err := loadbalance.ByName(lbName)
	if err != nil {
		log.Fatal(err)
	}
	for _, withLB := range []bool{false, true} {
		p := npb.Params{Class: npb.ClassB, NProcs: 64, NPEs: 8, Steps: steps, Trace: true}
		label := "without LB"
		if withLB {
			p.LB = strat
			label = "with " + strat.Name() + " LB"
		}
		r, err := npb.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("B.64,8PE %s — per-PE utilization (busy fraction of span):\n", label)
		for _, st := range trace.Utilization(r.Trace, p.NPEs) {
			bar := strings.Repeat("#", int(st.Fraction()*40))
			fmt.Printf("  PE %d %6.1f%% %-40s (%d switches)\n", st.PE, st.Fraction()*100, bar, st.Switches)
		}
		c := r.Trace.Counts()
		fmt.Printf("  events: %d switches, %d migrations; modeled time %.1f ms\n\n",
			c[trace.EvSwitchIn], c[trace.EvMigrateOut], r.TimeNs/1e6)
	}
}
