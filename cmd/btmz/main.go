// Btmz regenerates Figure 12: the NAS BT-MZ multi-zone benchmark with
// and without AMPI thread-migration load balancing, across the
// paper's problem classes and rank/PE configurations.
//
// Usage: btmz [-steps 20] [-lb greedy] [-coll tree|flat|topo] [-agg off|on|N:B]
//             [-steal off|on] [-chunks N] [-overlap] [-reduce N]
//
// -overlap makes the halo exchange split-phase (receives posted and
// halos sent before the solve, completed after it) and pipelines the
// residual reduction through Iallreduce — communication hides under
// compute. -coll topo builds the collective spanning trees along the
// torus/PE-group hierarchy instead of rank order and reports the
// logical hops the tree edges crossed.
//
// With -mode ult|event the zone step runs as a continuation Program
// on the chosen flow backend instead of the legacy thread job: one
// zone per rank on the skewed class (-class, default Z4K), reported
// with and without the LB gate. Event mode is the configuration that
// scales past 10^5 zones, moving ~180-byte records instead of stacks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"migflow/internal/ampi"
	"migflow/internal/comm"
	"migflow/internal/harness"
	"migflow/internal/loadbalance"
	"migflow/internal/npb"
	"migflow/internal/trace"
)

func main() {
	steps := flag.Int("steps", 20, "solver timesteps")
	lbName := flag.String("lb", "greedy", "load balancer: greedy | refine | rotate | commaware | hier")
	showTrace := flag.Bool("trace", false, "print per-PE utilization traces for B.64,8PE")
	collName := flag.String("coll", "tree", "collective algorithm: tree | flat | topo")
	overlap := flag.Bool("overlap", false, "split-phase halo exchange: communication overlaps the solve")
	reduceEvery := flag.Int("reduce", 0, "residual-proxy Allreduce every N steps (0 = never; pipelined with -overlap)")
	aggSpec := flag.String("agg", "off", "boundary-exchange aggregation: off | on | maxPayloads:maxBytes (e.g. 16:8192)")
	stealSpec := flag.String("steal", "off", "idle-cycle work stealing: off (deterministic pump) | on (parallel runner)")
	chunks := flag.Int("chunks", 0, "split each rank's per-step solve into N yieldable slices (steal points); 0 keeps one slice")
	mode := flag.String("mode", "", "program-mode flow backend: ult | event (empty = legacy thread job)")
	className := flag.String("class", "Z4K", "problem class for -mode runs: A | B | SP-A | LU-A | Z4K")
	npes := flag.Int("npes", 8, "PE count for -mode runs")
	flag.Parse()

	coll, err := parseColl(*collName)
	if err != nil {
		log.Fatal(err)
	}

	if *mode != "" {
		if err := programReport(*mode, *className, *steps, *lbName, *npes, coll, *overlap, *reduceEvery); err != nil {
			log.Fatal(err)
		}
		return
	}
	aggregate, pol, err := parseAgg(*aggSpec)
	if err != nil {
		log.Fatal(err)
	}
	steal, err := parseSteal(*stealSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *showTrace {
		traceReport(*steps, *lbName, coll, aggregate, pol)
		return
	}
	cfg := harness.Fig12Config{
		Coll: coll, Aggregate: aggregate, AggPolicy: pol,
		Steal: steal, WorkChunks: *chunks,
		Overlap: *overlap, ReduceEvery: *reduceEvery,
	}
	if *lbName != "greedy" {
		strat, err := loadbalance.ByName(*lbName)
		if err != nil {
			log.Fatal(err)
		}
		cfg.LB = strat
	}
	if _, err := harness.Figure12With(os.Stdout, *steps, cfg); err != nil {
		log.Fatal(err)
	}
}

// programReport runs the one-zone-per-rank program-mode study: the
// graded class without LB, then with the chosen strategy's gate.
func programReport(mode, className string, steps int, lbName string, npes int, coll ampi.CollAlgo, overlap bool, reduceEvery int) error {
	class, err := npb.ClassByName(className)
	if err != nil {
		return err
	}
	strat, err := loadbalance.ByName(lbName)
	if err != nil {
		return err
	}
	base := npb.Params{
		Class: class, NProcs: class.NumZones(), NPEs: npes,
		Steps: steps, Mode: mode,
		Collectives: coll, Overlap: overlap, ReduceEvery: reduceEvery,
	}
	before, err := npb.Run(base)
	if err != nil {
		return err
	}
	with := base
	with.LB = strat
	after, err := npb.Run(with)
	if err != nil {
		return err
	}
	variant := ""
	if overlap {
		variant = ", split-phase overlap"
	}
	fmt.Printf("%s — %d zone-ranks on %d PEs, %d steps%s\n", with.Label(), base.NProcs, npes, steps, variant)
	fmt.Printf("  no LB:            %10.2f ms  (imbalance %.3f)\n", before.TimeNs/1e6, before.Imbalance)
	fmt.Printf("  with %-10s   %10.2f ms  (imbalance %.3f, moved %d ranks, %d B migrated)\n",
		strat.Name()+" LB:", after.TimeNs/1e6, after.Imbalance, after.MovedRanks, after.MigratedBytes)
	if after.TopoHops > 0 || before.TopoHops > 0 {
		fmt.Printf("  collective tree hops: %d (noLB) / %d (LB)\n", before.TopoHops, after.TopoHops)
	}
	return nil
}

func parseSteal(spec string) (bool, error) {
	switch spec {
	case "", "off":
		return false, nil
	case "on":
		return true, nil
	}
	return false, fmt.Errorf("btmz: bad -steal %q (want off or on)", spec)
}

func parseColl(name string) (ampi.CollAlgo, error) {
	switch name {
	case "tree":
		return ampi.CollTree, nil
	case "flat":
		return ampi.CollFlat, nil
	case "topo":
		return ampi.CollTopoTree, nil
	}
	return 0, fmt.Errorf("btmz: unknown -coll %q (want tree, flat, or topo)", name)
}

// parseAgg reads "off", "on" (default policy), or an explicit
// "maxPayloads:maxBytes" flush policy.
func parseAgg(spec string) (bool, comm.AggPolicy, error) {
	switch spec {
	case "", "off":
		return false, comm.AggPolicy{}, nil
	case "on":
		return true, comm.AggPolicy{}, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return false, comm.AggPolicy{}, fmt.Errorf("btmz: bad -agg %q (want off, on, or maxPayloads:maxBytes)", spec)
	}
	n, err1 := strconv.Atoi(parts[0])
	b, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n < 1 || b < 1 {
		return false, comm.AggPolicy{}, fmt.Errorf("btmz: bad -agg %q (want off, on, or maxPayloads:maxBytes)", spec)
	}
	return true, comm.AggPolicy{MaxPayloads: n, MaxBytes: b}, nil
}

// traceReport prints per-PE utilization for the worst Figure 12 case
// with and without the chosen balancer — a Projections-style summary
// from the trace subsystem.
func traceReport(steps int, lbName string, coll ampi.CollAlgo, aggregate bool, pol comm.AggPolicy) {
	strat, err := loadbalance.ByName(lbName)
	if err != nil {
		log.Fatal(err)
	}
	for _, withLB := range []bool{false, true} {
		p := npb.Params{
			Class: npb.ClassB, NProcs: 64, NPEs: 8, Steps: steps, Trace: true,
			Collectives: coll, Aggregate: aggregate, AggPolicy: pol,
		}
		label := "without LB"
		if withLB {
			p.LB = strat
			label = "with " + strat.Name() + " LB"
		}
		r, err := npb.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("B.64,8PE %s — per-PE utilization (busy fraction of span):\n", label)
		for _, st := range trace.Utilization(r.Trace, p.NPEs) {
			bar := strings.Repeat("#", int(st.Fraction()*40))
			fmt.Printf("  PE %d %6.1f%% %-40s (%d switches)\n", st.PE, st.Fraction()*100, bar, st.Switches)
		}
		c := r.Trace.Counts()
		fmt.Printf("  events: %d switches, %d migrations; modeled time %.1f ms\n\n",
			c[trace.EvSwitchIn], c[trace.EvMigrateOut], r.TimeNs/1e6)
	}
}
