// Flowbench regenerates Figures 4-8: context-switch time versus the
// number of flows for processes, kernel threads, user-level (Cth)
// threads, migratable AMPI threads and event-driven objects, on any
// emulated platform.
//
// Usage:
//
//	flowbench [-platform linux-x86] [-rounds 3] [-max 8192]
//	flowbench -all   # all five paper platforms (Figures 4-8)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"migflow/internal/harness"
)

func main() {
	plat := flag.String("platform", "linux-x86", "platform profile (see internal/platform)")
	all := flag.Bool("all", false, "run the five Figure 4-8 platforms")
	rounds := flag.Int("rounds", 3, "yield rounds per measurement")
	max := flag.Int("max", 8192, "largest flow count")
	flag.Parse()

	var counts []int
	for n := 2; n <= *max; n *= 2 {
		counts = append(counts, n)
	}
	platforms := []string{*plat}
	if *all {
		platforms = []string{"linux-x86", "mac-g5", "sun-solaris9", "ibm-sp", "alpha-es45"}
	}
	for i, p := range platforms {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== Figure %d ==\n", 4+i)
		if _, err := harness.FigureSwitchCurves(os.Stdout, p, counts, *rounds); err != nil {
			log.Fatal(err)
		}
	}
}
