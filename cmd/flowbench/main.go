// Flowbench regenerates Figures 4-8: context-switch time versus the
// number of flows for processes, kernel threads, user-level (Cth)
// threads, migratable AMPI threads and event-driven objects, on any
// emulated platform.
//
// -mode additionally runs the AMPI Jacobi workload with the selected
// rank backend (mirroring `bigsim -mode`):
//
//	ult    every MPI rank is a migratable user-level thread (default
//	       AMPI behaviour)
//	event  every rank is a continuation record dispatched inline by
//	       its simulating PE — no stack, no goroutine
//	both   run each PE count through both backends and print the
//	       ULT-vs-event comparison columns
//
// Usage:
//
//	flowbench [-platform linux-x86] [-rounds 3] [-max 8192]
//	flowbench -all   # all five paper platforms (Figures 4-8)
//	flowbench -mode both [-ranks 4096] [-iters 8] [-jpes 1,2,4,8] [-migrate 4]
//
// -migrate N inserts one collective LB gate after Jacobi iteration N
// (with a deterministic work skew so the balancer has something to
// fix): ULT ranks migrate as threads, event ranks as ~180-byte
// continuation records.
//
// -overlap switches the Jacobi runs to the split-phase schedule
// (halos and the pipelined residual Iallreduce fly under the
// relaxation work) and additionally prints the BT-MZ overlap A/B and
// the rank-order-vs-topology spanning-tree hop comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"migflow/internal/ampi"
	"migflow/internal/harness"
)

func main() {
	plat := flag.String("platform", "linux-x86", "platform profile (see internal/platform)")
	all := flag.Bool("all", false, "run the five Figure 4-8 platforms")
	rounds := flag.Int("rounds", 3, "yield rounds per measurement")
	max := flag.Int("max", 8192, "largest flow count")
	mode := flag.String("mode", "", "also run the AMPI Jacobi workload: ult, event, or both")
	ranks := flag.Int("ranks", 4096, "AMPI Jacobi rank count (with -mode)")
	iters := flag.Int("iters", 8, "AMPI Jacobi iterations (with -mode)")
	jpes := flag.String("jpes", "1,2,4,8", "comma-separated simulating PE counts (with -mode)")
	migrateAt := flag.Int("migrate", 0, "insert one mid-run LB gate after this Jacobi iteration (with -mode; 0 = never)")
	overlap := flag.Bool("overlap", false, "split-phase overlap: nonblocking collectives hide exchange latency; prints the BT-MZ overlap and topo-tree studies")
	flag.Parse()

	// Validate the workload flags BEFORE the (long) figure runs and
	// before any rank store is allocated: a typoed -mode used to
	// surface only after minutes of switch-curve measurement.
	switch *mode {
	case "", ampi.ModeULT, ampi.ModeEvent, "both":
	default:
		log.Fatalf("bad -mode %q: want ult, event, or both", *mode)
	}
	if *migrateAt < 0 || *migrateAt > *iters {
		log.Fatalf("bad -migrate %d: want 0 (never) to -iters (%d)", *migrateAt, *iters)
	}
	var peCounts []int
	if *mode != "" {
		for _, s := range strings.Split(*jpes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				log.Fatalf("bad -jpes entry %q", s)
			}
			peCounts = append(peCounts, n)
		}
	}

	var counts []int
	for n := 2; n <= *max; n *= 2 {
		counts = append(counts, n)
	}
	platforms := []string{*plat}
	if *all {
		platforms = []string{"linux-x86", "mac-g5", "sun-solaris9", "ibm-sp", "alpha-es45"}
	}
	for i, p := range platforms {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== Figure %d ==\n", 4+i)
		if _, err := harness.FigureSwitchCurves(os.Stdout, p, counts, *rounds); err != nil {
			log.Fatal(err)
		}
	}

	if *mode != "" {
		fmt.Println("\n== AMPI Jacobi flows ==")
		switch *mode {
		case ampi.ModeULT, ampi.ModeEvent:
			if err := harness.JacobiBackend(os.Stdout, *ranks, *iters, peCounts, *mode, *migrateAt, *overlap); err != nil {
				log.Fatal(err)
			}
		case "both":
			if _, err := harness.JacobiMode(os.Stdout, *ranks, *iters, peCounts, *migrateAt, *overlap); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *overlap {
		fmt.Println("\n== Split-phase overlap and topology-aware trees ==")
		if _, err := harness.OverlapStudy(os.Stdout, 12, 8); err != nil {
			log.Fatal(err)
		}
		if err := harness.TopoTreeStudy(os.Stdout, 256, 16); err != nil {
			log.Fatal(err)
		}
	}
}
