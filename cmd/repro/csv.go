package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"migflow/internal/flows"
	"migflow/internal/harness"
	"migflow/internal/npb"
)

// CSV export: when -csv DIR is given, every figure's data series is
// also written as a plotting-ready CSV file in DIR.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func csvSwitchCurves(dir, file string, curves map[flows.Kind][]flows.Point, counts []int) error {
	header := []string{"flows"}
	for _, k := range flows.Kinds() {
		header = append(header, string(k)+"_ns_per_switch")
	}
	var rows [][]string
	for _, n := range counts {
		row := []string{strconv.Itoa(n)}
		for _, k := range flows.Kinds() {
			cell := ""
			for _, pt := range curves[k] {
				if pt.Flows == n {
					cell = ftoa(pt.NsPerYield)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, file, header, rows)
}

func csvFig9(dir string, pts []harness.Fig9Point) error {
	header := []string{"strategy", "stack_bytes", "sim_ns_per_switch", "wall_ns_per_switch"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			p.Strategy, strconv.FormatUint(p.StackSize, 10), ftoa(p.VirtualNs), ftoa(p.WallNs),
		})
	}
	return writeCSV(dir, "fig9_stack_size.csv", header, rows)
}

func csvFig11(dir string, pts []harness.Fig11Point) error {
	header := []string{"sim_pes", "ults_per_pe", "sim_ns_per_step", "wall_ns_total"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.SimPEs), strconv.Itoa(p.ThreadsPE), ftoa(p.StepTimeNs), ftoa(p.WallNs),
		})
	}
	return writeCSV(dir, "fig11_bigsim.csv", header, rows)
}

func csvFig12(dir string, pairs [][2]*npb.Result) error {
	header := []string{"case", "no_lb_ms", "lb_ms", "speedup", "no_lb_imbalance", "lb_imbalance", "ranks_moved"}
	var rows [][]string
	for _, pr := range pairs {
		base, lb := pr[0], pr[1]
		rows = append(rows, []string{
			base.Params.Label(),
			ftoa(base.TimeNs / 1e6), ftoa(lb.TimeNs / 1e6),
			ftoa(base.TimeNs / lb.TimeNs),
			ftoa(base.Imbalance), ftoa(lb.Imbalance),
			strconv.Itoa(lb.MovedRanks),
		})
	}
	return writeCSV(dir, "fig12_btmz.csv", header, rows)
}

func csvTable2(dir string, rows []harness.Table2Row, platforms []string) error {
	header := append([]string{"mechanism"}, platforms...)
	var out [][]string
	for _, r := range rows {
		row := []string{string(r.Kind)}
		for _, p := range platforms {
			row = append(row, strconv.Itoa(r.Limits[p]))
		}
		out = append(out, row)
	}
	return writeCSV(dir, "table2_limits.csv", header, out)
}

func csvNote(dir string) {
	fmt.Printf("\n(CSV series written to %s)\n", dir)
}
