// Repro regenerates the paper's entire evaluation section — both
// tables and every figure — in one run, printing each artifact in
// order. This is the one-command reproduction entry point; see
// EXPERIMENTS.md for the paper-versus-measured discussion.
//
// Usage: repro [-quick] [-csv DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"migflow/internal/harness"
	"migflow/internal/platform"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps (seconds instead of minutes)")
	csvDir := flag.String("csv", "", "also write plotting-ready CSV series into this directory")
	flag.Parse()

	counts := []int{2, 8, 32, 128, 512, 2048, 8192}
	sizes := []uint64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20}
	fig11PEs := []int{1, 2, 4, 8, 16, 32, 64}
	torus := [3]int{25, 25, 16} // 10,000 target processors
	steps, swaps, switches := 20, 2_000_000, 200
	if *quick {
		counts = []int{2, 32, 512}
		sizes = []uint64{8 << 10, 128 << 10, 2 << 20}
		fig11PEs = []int{1, 4, 16}
		torus = [3]int{10, 10, 10}
		steps, swaps, switches = 8, 200_000, 50
	}

	section := func(name string) { fmt.Printf("\n================ %s ================\n", name) }
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	csvIf := func(err error) {
		if *csvDir != "" {
			check(err)
		}
	}

	section("Table 1 (§3.4.4)")
	harness.Table1(os.Stdout)

	section("Table 2 (§4.1)")
	t2, err := harness.Table2(os.Stdout, 100000)
	check(err)
	if *csvDir != "" {
		csvIf(csvTable2(*csvDir, t2, platform.Table2Order()))
	}

	figNames := []string{"Figure 4 (Linux x86)", "Figure 5 (Mac G5)", "Figure 6 (Solaris)", "Figure 7 (IBM SP)", "Figure 8 (Alpha)"}
	for i, p := range []string{"linux-x86", "mac-g5", "sun-solaris9", "ibm-sp", "alpha-es45"} {
		section(figNames[i] + " (§4.1)")
		curves, err := harness.FigureSwitchCurves(os.Stdout, p, counts, 3)
		check(err)
		if *csvDir != "" {
			csvIf(csvSwitchCurves(*csvDir, fmt.Sprintf("fig%d_%s.csv", 4+i, p), curves, counts))
		}
	}

	section("Blocking-call models (§2.2-2.3)")
	_, err = harness.BlockingModels(os.Stdout, platform.LinuxX86())
	check(err)

	section("Address-space capacity (§3.4.2)")
	_, err = harness.IsoCapacity(os.Stdout, []uint64{64 << 10, 256 << 10, 1 << 20}, 100000)
	check(err)

	section("Figure 9 (§4.2)")
	f9, err := harness.Figure9(os.Stdout, sizes, switches)
	check(err)
	if *csvDir != "" {
		csvIf(csvFig9(*csvDir, f9))
	}

	section("Figure 10 / §4.3")
	harness.Figure10(os.Stdout, swaps)

	section("Figure 11 (§4.4)")
	f11, err := harness.Figure11(os.Stdout, torus[0], torus[1], torus[2], 5, fig11PEs)
	check(err)
	if *csvDir != "" {
		csvIf(csvFig11(*csvDir, f11))
	}

	section("Figure 12 (§4.5)")
	f12, err := harness.Figure12(os.Stdout, steps)
	check(err)
	if *csvDir != "" {
		csvIf(csvFig12(*csvDir, f12))
		csvNote(*csvDir)
	}
}
