// Command benchjson converts `go test -bench` output on stdin into a
// JSON object mapping benchmark name to its measured numbers, for
// recording hot-path trajectories across PRs (see `make bench`).
//
// Usage: go test -bench . -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line's numbers. Custom metrics reported via
// b.ReportMetric (e.g. "vns/op", modeled virtual ns per collective;
// "B/flow", resident bytes per BigSim target flow; or dimensionless
// counts like "hops", torus hops per collective) land in Extra keyed
// by their unit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine reads one `go test -bench` output line. It returns the
// benchmark name (with the trailing "-<GOMAXPROCS>" suffix stripped)
// and the parsed numbers; ok is false for non-benchmark lines and
// for lines without an ns/op column.
func parseLine(line string) (name string, r Result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	// Benchmark lines look like:
	//   BenchmarkSend-8  1000  59.2 ns/op  12.3 MB/s  0 B/op  0 allocs/op
	// Strip only the trailing "-<GOMAXPROCS>" suffix; sub-benchmark
	// names may legitimately contain hyphens ("ult-isomalloc").
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			ok = true
		case "allocs/op":
			r.AllocsPerOp = &v
		case "B/op":
			r.BytesPerOp = &v
		case "MB/s":
			r.MBPerSec = &v
		default:
			// Everything else is a custom b.ReportMetric column:
			// "vns/op", "B/flow", "ranks", "moved%", "LB-ms", "hops",
			// ... — bench lines are strict (value, unit) pairs, so
			// keep them all (dimensionless units included) rather
			// than maintaining an allowlist.
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return name, r, ok
}

func main() {
	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
