package main

import "testing"

func TestParseLineBasic(t *testing.T) {
	name, r, ok := parseLine("BenchmarkSend-8  1000  59.2 ns/op  12.3 MB/s  16 B/op  2 allocs/op")
	if !ok || name != "BenchmarkSend" {
		t.Fatalf("parse failed: name=%q ok=%v", name, ok)
	}
	if r.NsPerOp != 59.2 || *r.MBPerSec != 12.3 || *r.BytesPerOp != 16 || *r.AllocsPerOp != 2 {
		t.Errorf("wrong numbers: %+v", r)
	}
}

// TestParseLineDimensionlessUnits pins the contract the topology
// benchmarks rely on: custom b.ReportMetric columns with
// dimensionless units ("hops") and named milliseconds ("off-ms")
// land in Extra keyed by unit, alongside the modeled-time "vns/op".
func TestParseLineDimensionlessUnits(t *testing.T) {
	line := "BenchmarkCollTopoTree/topo/P256-8  5  1088145 ns/op  32.00 hops  287769 vns/op  252692 B/op  4271 allocs/op"
	name, r, ok := parseLine(line)
	if !ok || name != "BenchmarkCollTopoTree/topo/P256" {
		t.Fatalf("parse failed: name=%q ok=%v", name, ok)
	}
	if got := r.Extra["hops"]; got != 32 {
		t.Errorf("Extra[hops] = %g, want 32", got)
	}
	if got := r.Extra["vns/op"]; got != 287769 {
		t.Errorf("Extra[vns/op] = %g, want 287769", got)
	}
	line = "BenchmarkBTMZOverlap/event-8  3  21080980 ns/op  96.00 hops  24.78 off-ms  23.51 on-ms"
	if _, r, ok = parseLine(line); !ok || r.Extra["off-ms"] != 24.78 || r.Extra["on-ms"] != 23.51 || r.Extra["hops"] != 96 {
		t.Errorf("overlap metrics not kept: ok=%v extra=%v", ok, r.Extra)
	}
}

// TestParseLineWireMetrics pins the transport-benchmark columns the
// wire-tax table reads: syscall economy (envelopes/syscall,
// bytes/syscall), coalescing (payloads/envelope), and the shm
// reader's parks/op all land in Extra keyed by unit.
func TestParseLineWireMetrics(t *testing.T) {
	line := "BenchmarkTransportSendCrossStreamShm-8  1215925  987.8 ns/op  76034 bytes/syscall  866.8 envelopes/syscall  15.96 payloads/envelope  0.02 parks/op  290 B/op  1 allocs/op"
	name, r, ok := parseLine(line)
	if !ok || name != "BenchmarkTransportSendCrossStreamShm" {
		t.Fatalf("parse failed: name=%q ok=%v", name, ok)
	}
	for unit, want := range map[string]float64{
		"bytes/syscall":     76034,
		"envelopes/syscall": 866.8,
		"payloads/envelope": 15.96,
		"parks/op":          0.02,
	} {
		if got := r.Extra[unit]; got != want {
			t.Errorf("Extra[%s] = %g, want %g", unit, got, want)
		}
	}
	if *r.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %g, want 1", *r.AllocsPerOp)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  	migflow/internal/ampi	1.3s",
		"PASS",
		"BenchmarkBroken-8 only three",
		"goos: linux",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Errorf("accepted %q as %q", line, name)
		}
	}
}

// The GOMAXPROCS suffix is stripped, but hyphens inside sub-benchmark
// names survive.
func TestParseLineNameHyphens(t *testing.T) {
	name, _, ok := parseLine("BenchmarkMigration/ult-isomalloc-16  10  5000 ns/op")
	if !ok || name != "BenchmarkMigration/ult-isomalloc" {
		t.Errorf("name = %q ok=%v, want BenchmarkMigration/ult-isomalloc", name, ok)
	}
}
