// Stackbench regenerates Figure 9: context-switch time versus stack
// size for the three migratable-thread techniques (stack copying,
// isomalloc, memory aliasing), in both simulated time (the 2006
// platform's cost model) and wall-clock time (this repository's real
// memcpy/remap work).
//
// Usage: stackbench [-switches 200] [-min 8192] [-max 8388608]
package main

import (
	"flag"
	"log"
	"os"

	"migflow/internal/harness"
)

func main() {
	switches := flag.Int("switches", 200, "yields per thread per measurement")
	min := flag.Uint64("min", 8<<10, "smallest stack in bytes")
	max := flag.Uint64("max", 8<<20, "largest stack in bytes")
	flag.Parse()

	var sizes []uint64
	for s := *min; s <= *max; s *= 2 {
		sizes = append(sizes, s)
	}
	if _, err := harness.Figure9(os.Stdout, sizes, *switches); err != nil {
		log.Fatal(err)
	}
}
