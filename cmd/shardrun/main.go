// Shardrun launches a sharded (multi-OS-process) run of one of the
// registered apps and, with -compare, checks it bitwise against the
// in-process ring-buffer run of the identical configuration.
//
// The same binary serves as parent and worker: shard.WorkerMain
// re-enters through main in each spawned process (selected by
// environment, never by flags), so the launcher needs no separate
// worker executable.
//
// Usage:
//
//	shardrun [-app jacobi|btmz|bigsim] [-workers 2] [-net unix|tcp|shm]
//	         [-compare] [-migrate N]
//	         [-ranks 64] [-iters 20] [-pes 4] [-steps 6]
//	         [-x 20 -y 20 -z 10 -simpes 8] [-agg]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"migflow/internal/ampi"
	"migflow/internal/bigsim"
	"migflow/internal/harness"
	"migflow/internal/npb"
	"migflow/internal/shard"
)

func main() {
	if shard.WorkerMain() {
		return
	}
	app := flag.String("app", "jacobi", "sharded app: jacobi, btmz, or bigsim")
	workers := flag.Int("workers", 2, "worker process count")
	netKind := flag.String("net", "unix", "worker mesh transport: unix, tcp, or shm (shared-memory rings)")
	compare := flag.Bool("compare", true, "also run in-process and demand bitwise equality")
	migrate := flag.Int("migrate", 0, "event ranks worker 0 ships to worker 1 mid-run (jacobi/btmz)")
	ranks := flag.Int("ranks", 64, "jacobi: event ranks")
	iters := flag.Int("iters", 20, "jacobi: iterations")
	pes := flag.Int("pes", 4, "jacobi/btmz: simulating PEs per machine")
	steps := flag.Int("steps", 6, "btmz/bigsim: timesteps")
	x := flag.Int("x", 20, "bigsim: target torus X")
	y := flag.Int("y", 20, "bigsim: target torus Y")
	z := flag.Int("z", 10, "bigsim: target torus Z")
	simpes := flag.Int("simpes", 8, "bigsim: simulating PEs")
	agg := flag.Bool("agg", false, "bigsim: coalesce ghost traffic")
	flag.Parse()

	var (
		row harness.CrossProcessRow
		err error
	)
	switch *app {
	case "jacobi":
		cfg := ampi.JacobiConfig{Ranks: *ranks, Iters: *iters, PEs: *pes, Mode: ampi.ModeEvent}
		row, err = runRanked(*app, *ranks, *workers, *netKind, *compare,
			shard.JacobiSpec{Cfg: cfg, Migrate: *migrate},
			func() (*shard.Report, error) { return shard.RunJacobiReference(cfg) })
	case "btmz":
		p := npb.Params{
			Class: npb.GradedClass("T64", 8, 8, 1<<12, 8, 20),
			Mode:  ampi.ModeEvent, NProcs: *ranks, NPEs: *pes, Steps: *steps,
		}
		row, err = runRanked(*app, p.NProcs, *workers, *netKind, *compare,
			shard.BTMZSpec{Params: p, Migrate: *migrate},
			func() (*shard.Report, error) { return shard.RunBTMZReference(p) })
	case "bigsim":
		spec := shard.BigSimSpec{
			Cfg: bigsim.Config{
				X: *x, Y: *y, Z: *z, SimPEs: *simpes, Mode: bigsim.ModeEvent,
				Aggregate: *agg,
			},
			Steps: *steps,
		}
		row, err = runBigSim(spec, *workers, *netKind, *compare)
	default:
		log.Fatalf("unknown -app %q", *app)
	}
	if err != nil {
		log.Fatal(err)
	}
	harness.CrossProcessTable(os.Stdout, fmt.Sprintf("%d workers over %s", *workers, *netKind),
		[]harness.CrossProcessRow{row})
	if *compare && !row.Bitwise {
		os.Exit(1)
	}
}

// runRanked drives a rank-based app (jacobi/btmz) sharded, optionally
// checking the merged result bitwise against the in-process reference.
func runRanked(app string, size, workers int, netKind string, compare bool,
	payload any, reference func() (*shard.Report, error)) (harness.CrossProcessRow, error) {
	row := harness.CrossProcessRow{App: app, Flows: size, Workers: workers, Net: netKind, Bitwise: true}
	start := time.Now()
	raws, err := shard.Run(shard.ProcSpec{App: app, Workers: workers, Net: netKind, Payload: payload})
	if err != nil {
		return row, err
	}
	row.WallMs = float64(time.Since(start)) / 1e6
	reps, err := shard.DecodeReports(raws)
	if err != nil {
		return row, err
	}
	mg, err := shard.MergeReports(reps, size)
	if err != nil {
		return row, err
	}
	row.PredictedMs = mg.PredictedNs / 1e6
	row.Envelopes, row.EnvBytes, row.Moved = mg.RemoteEnv, mg.RemoteBytes, mg.Moved
	if !compare {
		return row, nil
	}
	ref, err := reference()
	if err != nil {
		return row, err
	}
	for _, rv := range ref.Ranks {
		if mg.VTBits[rv.Rank] != rv.Bits {
			row.Bitwise = false
			fmt.Fprintf(os.Stderr, "rank %d VT: in-process %g, sharded %g\n",
				rv.Rank, math.Float64frombits(rv.Bits), math.Float64frombits(mg.VTBits[rv.Rank]))
		}
	}
	for _, c := range ref.Cells {
		got, ok := mg.Cells[c.Rank]
		if !ok || got != c {
			row.Bitwise = false
			fmt.Fprintf(os.Stderr, "rank %d numeric state differs\n", c.Rank)
		}
	}
	return row, nil
}

// runBigSim drives the sharded parallel-simulator and compares its
// per-step prediction stream bitwise against the serial simulator.
func runBigSim(spec shard.BigSimSpec, workers int, netKind string, compare bool) (harness.CrossProcessRow, error) {
	row := harness.CrossProcessRow{
		App: "bigsim", Flows: spec.Cfg.SimPEs, Workers: workers, Net: netKind, Bitwise: true,
	}
	start := time.Now()
	raws, err := shard.Run(shard.ProcSpec{App: "bigsim", Workers: workers, Net: netKind, Payload: spec})
	if err != nil {
		return row, err
	}
	row.WallMs = float64(time.Since(start)) / 1e6
	reps, err := shard.DecodeBigSimReports(raws)
	if err != nil {
		return row, err
	}
	got := reps[0]
	for _, st := range got.Steps {
		row.PredictedMs += math.Float64frombits(st.PredBits) / 1e6
		row.Envelopes += uint64(st.Envelopes)
	}
	if !compare {
		return row, nil
	}
	ref, err := shard.RunBigSimReference(spec)
	if err != nil {
		return row, err
	}
	if len(ref.Steps) != len(got.Steps) {
		return row, fmt.Errorf("step counts differ: %d vs %d", len(ref.Steps), len(got.Steps))
	}
	for i := range ref.Steps {
		if ref.Steps[i] != got.Steps[i] {
			row.Bitwise = false
			fmt.Fprintf(os.Stderr, "step %d: serial %+v, sharded %+v\n", i, ref.Steps[i], got.Steps[i])
		}
	}
	return row, nil
}
