# Convenience targets for the migflow reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-collectives bench-lb bench-bigsim bench-ampi bench-eventmigrate bench-transport bench-all repro repro-quick examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path benchmarks; writes BENCH_hotpath.json (name → ns/op,
# allocs/op) so before/after numbers ride along with each PR.
# BENCHFLAGS tunes run length (e.g. BENCHFLAGS=-benchtime=10x in CI).
HOTPATH_PKGS = ./internal/comm/ ./internal/core/ ./internal/vmem/
BENCHFLAGS ?=

bench: bench-collectives bench-lb bench-bigsim
	$(GO) test -bench . -benchmem -run '^$$' $(BENCHFLAGS) $(HOTPATH_PKGS) | tee bench_output.txt
	$(GO) run ./cmd/benchjson < bench_output.txt > BENCH_hotpath.json
	$(GO) test -bench 'BenchmarkMigrate|BenchmarkLBStep' -benchmem -run '^$$' $(BENCHFLAGS) ./internal/migrate/ | tee bench_migrate_output.txt
	$(GO) run ./cmd/benchjson < bench_migrate_output.txt > BENCH_migrate.json

# Collectives + aggregation A/B: flat vs tree barrier/allreduce at
# P ∈ {8,64,256}, rank-order vs topology-aware spanning trees (hops
# columns count torus hops crossed by tree edges), the BT-MZ
# split-phase overlap A/B (off-ms/on-ms makespans per flow backend),
# and per-message vs aggregated ghost/boundary exchange (vns/op
# columns are modeled virtual time).
bench-collectives:
	$(GO) test -bench 'BenchmarkColl|BenchmarkAgg|BenchmarkGhost|BenchmarkBTMZ' -benchmem -run '^$$' $(BENCHFLAGS) \
		./internal/ampi/ ./internal/comm/ ./internal/bigsim/ ./internal/npb/ | tee bench_collectives_output.txt
	$(GO) run ./cmd/benchjson < bench_collectives_output.txt > BENCH_collectives.json

# Load-balancing + stealing A/B: plan cost of the seed linear-scan
# greedy vs the heap greedy vs the hierarchical strategy at
# P ∈ {8,64,256} × {1k,16k} items, and the BT-MZ modeled makespan
# with idle-cycle work stealing off vs on (vns/op is modeled time).
bench-lb:
	$(GO) test -bench 'BenchmarkLBPlan' -benchmem -run '^$$' $(BENCHFLAGS) ./internal/loadbalance/ | tee bench_lb_output.txt
	$(GO) test -bench 'BenchmarkStealMakespan' -benchmem -run '^$$' $(BENCHFLAGS) ./internal/npb/ | tee -a bench_lb_output.txt
	$(GO) run ./cmd/benchjson < bench_lb_output.txt > BENCH_lb.json

# BigSim backend A/B: wall-clock ns/step and resident B/flow for the
# ULT (goroutine-per-target) and event-driven backends at 12,800 and
# 200,704 (paper-scale) target processors. The ULT backend at paper
# scale is gated behind BIGSIM_ULT_PAPER=1 — it needs a stack and two
# channels per target.
bench-bigsim:
	$(GO) test -bench 'BenchmarkBigSimStep|BenchmarkGhostExchange' -benchmem -run '^$$' $(BENCHFLAGS) \
		./internal/bigsim/ | tee bench_bigsim_output.txt
	$(GO) test -bench 'BenchmarkDeliver' -benchmem -benchtime=20000x -run '^$$' ./internal/sdag/ | tee -a bench_bigsim_output.txt
	$(GO) run ./cmd/benchjson < bench_bigsim_output.txt > BENCH_bigsim.json

# AMPI rank-backend A/B plus the headline event-mode run: the same
# Jacobi job with ULT and event ranks at 16,384 ranks, then event
# ranks alone at AMPI_BENCH_RANKS (default one million). Reports wall
# ns/step and resident B/rank; a ULT rank carries an isomalloc stack
# and a goroutine, an event rank is a ~184-byte continuation record.
AMPI_BENCH_RANKS ?= 1000000

bench-ampi:
	AMPI_BENCH_RANKS=$(AMPI_BENCH_RANKS) $(GO) test -bench 'BenchmarkAMPIJacobi' -benchmem -benchtime=1x -timeout 30m -run '^$$' \
		./internal/ampi/ | tee bench_ampi_output.txt
	$(GO) run ./cmd/benchjson < bench_ampi_output.txt > BENCH_ampi_event.json

# Migration-mechanism A/B plus the headline LB step: the same parked
# Jacobi job rotated between PEs with event continuation records vs
# the three ULT stack strategies (ns/rank, B/rank migrated), one full
# greedy LB step over EVENTMIG_RANKS event ranks (default one
# million), and the skewed-zone BT-MZ makespan before/after LB.
EVENTMIG_RANKS ?= 1000000

bench-eventmigrate:
	EVENTMIG_RANKS=$(EVENTMIG_RANKS) $(GO) test -bench 'BenchmarkEventMigrate|BenchmarkEventLBStepMillion|BenchmarkBTMZEventLB' \
		-benchmem -benchtime=1x -timeout 30m -run '^$$' \
		./internal/ampi/ ./internal/npb/ | tee bench_eventmigrate_output.txt
	$(GO) run ./cmd/benchjson < bench_eventmigrate_output.txt > BENCH_eventmigrate.json

# Transport A/B: in-process ring-buffer Send vs cross-process socket
# Send (single-message and coalesced-stream ns/op, B/op, ghosts per
# envelope), plus event-rank migration across a live socket (ns/rank).
bench-transport:
	$(GO) test -bench 'BenchmarkTransport|BenchmarkCrossProcessMigration' -benchmem -run '^$$' $(BENCHFLAGS) \
		./internal/shard/ | tee bench_transport_output.txt
	$(GO) run ./cmd/benchjson < bench_transport_output.txt > BENCH_transport.json

# Every named benchmark family, each writing its BENCH_*.json
# (bench already pulls in collectives/lb/bigsim).
bench-all: bench bench-ampi bench-eventmigrate bench-transport

# Regenerate every table and figure of the paper's evaluation.
repro:
	$(GO) run ./cmd/repro

repro-quick:
	$(GO) run ./cmd/repro -quick

# CSV series for plotting.
repro-csv:
	$(GO) run ./cmd/repro -csv figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/bigsim
	$(GO) run ./examples/faulttolerance

cover:
	$(GO) test ./... -coverpkg=./internal/... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench*_output.txt
	rm -rf figures
