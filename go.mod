module migflow

go 1.22
