// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (see DESIGN.md's per-experiment index), plus
// ablation benchmarks for the design choices this reproduction makes.
//
// Two time bases appear in the output: benchmarks whose cost is real
// work in this repository (Figure 9's memcpy/remap, Figure 10's swap
// routines, PUP, migration) report honest wall-clock ns/op;
// benchmarks that emulate a 2006 platform (Figures 4-8, Tables)
// report the virtual measurement through the custom "sim-ns/switch"
// metric and use wall time only to drive iteration.
package migflow_test

import (
	"fmt"
	"testing"

	"migflow/internal/bigsim"
	"migflow/internal/converse"
	"migflow/internal/flows"
	"migflow/internal/harness"
	"migflow/internal/loadbalance"
	"migflow/internal/mem"
	"migflow/internal/migrate"
	"migflow/internal/npb"
	"migflow/internal/platform"
	"migflow/internal/pup"
	"migflow/internal/swapglobal"
	"migflow/internal/vmem"
)

// ---------------------------------------------------------------
// Table 1: portability matrix (derivation cost is trivial; the bench
// verifies and reports the matrix is derivable per-op).

func BenchmarkTable1Portability(b *testing.B) {
	profs := platform.Profiles()
	order := platform.Table1Order()
	for i := 0; i < b.N; i++ {
		for _, name := range order {
			for _, tech := range platform.Techniques() {
				_ = profs[name].Supports(tech)
			}
		}
	}
	b.ReportMetric(float64(len(order)*3), "cells/op")
}

// ---------------------------------------------------------------
// Table 2: create-until-failure probes against the simulated kernels.

func BenchmarkTable2Limits(b *testing.B) {
	for _, name := range platform.Table2Order() {
		prof, err := platform.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var procs, kthreads int
			for i := 0; i < b.N; i++ {
				pm, _ := flows.New(flows.KindProcess, prof, nil)
				procs = pm.Probe(100000)
				km, _ := flows.New(flows.KindKThread, prof, nil)
				kthreads = km.Probe(100000)
			}
			b.ReportMetric(float64(procs), "max-processes")
			b.ReportMetric(float64(kthreads), "max-kthreads")
		})
	}
}

// ---------------------------------------------------------------
// Figures 4-8: per-platform yield microbenchmarks. The reported
// sim-ns/switch is the virtual measurement at 1024 flows.

func benchSwitchFigure(b *testing.B, platName string) {
	prof, err := platform.ByName(platName)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range flows.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			const n = 1024
			var per float64
			for i := 0; i < b.N; i++ {
				m, err := flows.New(kind, prof, nil)
				if err != nil {
					b.Fatal(err)
				}
				per, err = m.BenchYield(n, 1)
				if err != nil {
					b.Skipf("%s unsupported at %d flows on %s: %v", kind, n, platName, err)
				}
			}
			b.ReportMetric(per, "sim-ns/switch")
		})
	}
}

func BenchmarkFig4LinuxSwitch(b *testing.B) { benchSwitchFigure(b, "linux-x86") }
func BenchmarkFig5MacSwitch(b *testing.B)   { benchSwitchFigure(b, "mac-g5") }
func BenchmarkFig6SunSwitch(b *testing.B)   { benchSwitchFigure(b, "sun-solaris9") }
func BenchmarkFig7IBMSPSwitch(b *testing.B) { benchSwitchFigure(b, "ibm-sp") }
func BenchmarkFig8AlphaSwitch(b *testing.B) { benchSwitchFigure(b, "alpha-es45") }

// ---------------------------------------------------------------
// Figure 9: context switch vs stack size for the three migratable
// techniques. Wall ns/op is real work (memcpy for stack copy, page
// remapping for aliasing, nothing for isomalloc); sim-ns/switch is
// the platform model.

func BenchmarkFig9StackSize(b *testing.B) {
	for _, strat := range migrate.All() {
		for _, size := range []uint64{8 << 10, 64 << 10, 512 << 10, 2 << 20, 8 << 20} {
			b.Run(fmt.Sprintf("%s/%dKB", strat.Name(), size>>10), func(b *testing.B) {
				var pt harness.Fig9Point
				var err error
				for i := 0; i < b.N; i++ {
					pt, err = harness.Fig9Measure(strat, size, 20)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pt.VirtualNs, "sim-ns/switch")
				b.ReportMetric(pt.WallNs, "wall-ns/switch")
			})
		}
	}
}

// ---------------------------------------------------------------
// Figure 10 / §4.3: minimal context switch routines, wall clock.

func BenchmarkFig10MinimalSwap(b *testing.B) {
	var x, y converse.RegContext
	var live [converse.CalleeSavedRegs]uint64
	sp := uint64(0x1000)
	b.Run("minimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			converse.MinimalSwap(&x, &y, &live, &sp)
		}
	})
	var liveF [converse.FullRegs]uint64
	b.Run("full-registers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			converse.FullSwap(&x, &y, &liveF, &sp)
		}
	})
	mask := uint64(0)
	b.Run("full-plus-sigmask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			converse.SigmaskSwap(&x, &y, &liveF, &sp, &mask)
		}
	})
	b.Run("goroutine-handoff", func(b *testing.B) {
		ping := make(chan struct{})
		pong := make(chan struct{})
		go func() {
			for range ping {
				pong <- struct{}{}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping <- struct{}{}
			<-pong
		}
		b.StopTimer()
		close(ping)
	})
}

// ---------------------------------------------------------------
// Figure 11: BigSim time per step across simulating PE counts.

func BenchmarkFig11BigSim(b *testing.B) {
	for _, pes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("simPEs-%d", pes), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				cfg := bigsim.DefaultConfig()
				cfg.X, cfg.Y, cfg.Z = 16, 16, 8 // 2048 target processors
				cfg.SimPEs = pes
				sim, err := bigsim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mean = bigsim.MeanStepTime(sim.Run(4))
				sim.Close()
			}
			b.ReportMetric(mean, "sim-ns/step")
		})
	}
}

// BenchmarkFig11BigSimParallel measures the REAL wall-clock speedup
// of driving the simulating PEs with one goroutine each (SMP
// execution, possible because isomalloc threads are not exclusive).
// ns/op is honest wall time per 4-step run.
func BenchmarkFig11BigSimParallel(b *testing.B) {
	for _, pes := range []int{1, 4} {
		for _, mode := range []string{"serial", "parallel"} {
			b.Run(fmt.Sprintf("simPEs-%d/%s", pes, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := bigsim.DefaultConfig()
					cfg.X, cfg.Y, cfg.Z = 16, 16, 8
					cfg.SimPEs = pes
					sim, err := bigsim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "parallel" {
						sim.RunParallel(4)
					} else {
						sim.Run(4)
					}
					sim.Close()
				}
			})
		}
	}
}

// ---------------------------------------------------------------
// Figure 12: BT-MZ with and without LB.

func BenchmarkFig12BTMZ(b *testing.B) {
	for _, p := range npb.Cases(10, nil) {
		for _, lb := range []string{"none", "greedy"} {
			b.Run(p.Label()+"/"+lb, func(b *testing.B) {
				q := p
				if lb == "greedy" {
					q.LB = loadbalance.GreedyLB{}
				}
				var res *npb.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = npb.Run(q)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.TimeNs/1e6, "sim-ms/run")
				b.ReportMetric(res.Imbalance, "imbalance")
			})
		}
	}
}

// ---------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md).

// BenchmarkAblationGOTSwap: per-switch cost of swap-global
// privatization as the number of globals grows.
func BenchmarkAblationGOTSwap(b *testing.B) {
	for _, nglobals := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("globals-%d", nglobals), func(b *testing.B) {
			layout := swapglobal.NewLayout()
			for i := 0; i < nglobals; i++ {
				layout.Declare(fmt.Sprintf("g%d", i), 8)
			}
			space := vmem.NewSpace(0)
			got, err := swapglobal.Install(space, 0x30000000, layout)
			if err != nil {
				b.Fatal(err)
			}
			heap, err := mem.NewHeap(space, vmem.Range{Start: 0x1000000, Length: 16 << 20})
			if err != nil {
				b.Fatal(err)
			}
			inst, err := swapglobal.NewInstance(layout, mem.AsAllocator(heap))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := got.Swap(inst.Image()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMallocInterpose: isomalloc-through-interposer
// versus direct system-heap allocation.
func BenchmarkAblationMallocInterpose(b *testing.B) {
	space := vmem.NewSpace(0)
	sys, err := mem.NewHeap(space, vmem.Range{Start: 0x1000000, Length: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	region, err := mem.NewIsoRegion(mem.DefaultIsoBase, 64<<20, 1)
	if err != nil {
		b.Fatal(err)
	}
	th := mem.NewThreadHeap(mem.NewIsoAllocator(region, 0), space, 0)
	ip := mem.NewInterposer(mem.AsAllocator(sys))
	b.Run("system-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := sys.Alloc(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Free(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interposed-system", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := ip.Malloc(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := ip.Free(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interposed-isomalloc", func(b *testing.B) {
		ip.Enter(th)
		defer ip.Exit()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := ip.Malloc(64)
			if err != nil {
				b.Fatal(err)
			}
			if err := ip.Free(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSchedulerLayers quantifies §4.3's layering claim:
// the minimal swap versus the full migratable scheduler path.
func BenchmarkAblationSchedulerLayers(b *testing.B) {
	b.Run("fast-ult-yield", func(b *testing.B) {
		s := converse.NewFastScheduler()
		n := b.N
		for i := 0; i < 2; i++ {
			th := s.Create(func(c *converse.FastCtx) {
				for j := 0; j < n; j++ {
					c.Yield()
				}
			})
			s.Start(th)
		}
		b.ResetTimer()
		s.RunUntilIdle()
	})
	b.Run("migratable-yield", func(b *testing.B) {
		region, err := mem.NewIsoRegion(mem.DefaultIsoBase, 4096*vmem.PageSize, 1)
		if err != nil {
			b.Fatal(err)
		}
		pe, err := converse.NewPE(converse.PEConfig{Index: 0, Profile: platform.Opteron(), IsoRegion: region})
		if err != nil {
			b.Fatal(err)
		}
		n := b.N
		for i := 0; i < 2; i++ {
			th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}, StackSize: vmem.PageSize}, func(c *converse.Ctx) {
				for j := 0; j < n; j++ {
					c.Yield()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			pe.Sched.Start(th)
		}
		b.ResetTimer()
		pe.Sched.RunUntilIdle()
	})
}

// BenchmarkAblationLBStrategies compares balancers on the B.64 case.
func BenchmarkAblationLBStrategies(b *testing.B) {
	for _, name := range []string{"greedy", "refine", "rotate"} {
		b.Run(name, func(b *testing.B) {
			strat, err := loadbalance.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			p := npb.Params{Class: npb.ClassB, NProcs: 64, NPEs: 8, Steps: 10, LB: strat}
			var res *npb.Result
			for i := 0; i < b.N; i++ {
				res, err = npb.Run(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TimeNs/1e6, "sim-ms/run")
			b.ReportMetric(res.Imbalance, "imbalance")
		})
	}
}

// BenchmarkAblationVirtualization sweeps the virtualization ratio
// (AMPI ranks per PE) on the BT-MZ class-B problem with LB on:
// post-LB execution time stays near the balanced optimum at every
// ratio, even though the *pre*-LB placement degrades sharply as
// ranks approach one-zone granularity (compare the Fig12 bench's
// "none" rows) — thread migration recovers what decomposition
// granularity loses, the paper's §4.5 argument for virtualization.
func BenchmarkAblationVirtualization(b *testing.B) {
	for _, nprocs := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("ranks-%d-on-8PE", nprocs), func(b *testing.B) {
			p := npb.Params{Class: npb.ClassB, NProcs: nprocs, NPEs: 8, Steps: 10, LB: loadbalance.GreedyLB{}}
			var res *npb.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = npb.Run(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.TimeNs/1e6, "sim-ms/run")
			b.ReportMetric(res.Imbalance, "imbalance")
		})
	}
}

// BenchmarkAblationBlockingModels reports the §2.2-2.3 blocking-call
// makespans per threading model (virtual time).
func BenchmarkAblationBlockingModels(b *testing.B) {
	prof := platform.LinuxX86()
	w := flows.BlockingWorkload{Flows: 16, Bursts: 10, ComputeNs: 20_000, IONs: 100_000}
	for _, c := range []struct {
		name  string
		model flows.BlockingModel
		m     int
	}{
		{"N1", flows.ModelN1, 0},
		{"NM-8", flows.ModelNM, 8},
		{"1to1", flows.Model1to1, 0},
		{"activations", flows.ModelActivations, 0},
	} {
		b.Run(c.name, func(b *testing.B) {
			var v float64
			var err error
			for i := 0; i < b.N; i++ {
				v, err = flows.SimulateBlocking(c.model, prof, w, c.m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(v/1e6, "sim-ms/makespan")
		})
	}
}

// BenchmarkMigration measures a real end-to-end thread migration
// (extract + PUP round trip + install + adoption) per stack size.
func BenchmarkMigration(b *testing.B) {
	for _, strat := range migrate.All() {
		for _, size := range []uint64{16 << 10, 256 << 10} {
			b.Run(fmt.Sprintf("%s/%dKB", strat.Name(), size>>10), func(b *testing.B) {
				region, err := mem.NewIsoRegion(mem.DefaultIsoBase, uint64(b.N+4)*2*vmem.RoundUpPages(size)+4096*vmem.PageSize, 2)
				if err != nil {
					b.Fatal(err)
				}
				mk := func(i int) *converse.PE {
					pe, err := converse.NewPE(converse.PEConfig{Index: i, Profile: platform.Opteron(), IsoRegion: region})
					if err != nil {
						b.Fatal(err)
					}
					return pe
				}
				pes := []*converse.PE{mk(0), mk(1)}
				hops := 0
				pes[0].Sched.SetMigrateHandler(func(t *converse.Thread, dest int) {
					if _, err := migrate.MigrateNow(t, pes[0], pes[1], nil); err != nil {
						b.Fatal(err)
					}
					hops++
				})
				pes[1].Sched.SetMigrateHandler(func(t *converse.Thread, dest int) {
					if _, err := migrate.MigrateNow(t, pes[1], pes[0], nil); err != nil {
						b.Fatal(err)
					}
					hops++
				})
				n := b.N
				th, err := pes[0].Sched.CthCreate(converse.ThreadOptions{Strategy: strat, StackSize: size}, func(c *converse.Ctx) {
					for i := 0; i < n; i++ {
						c.MigrateTo(1 - c.PE().Index)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				pes[0].Sched.Start(th)
				b.ResetTimer()
				for pes[0].Sched.ReadyLen() > 0 || pes[1].Sched.ReadyLen() > 0 {
					pes[0].Sched.RunUntilIdle()
					pes[1].Sched.RunUntilIdle()
				}
				b.StopTimer()
				if hops < n {
					b.Fatalf("only %d of %d migrations ran", hops, n)
				}
			})
		}
	}
}

// BenchmarkPUP measures serialization throughput of the PUP framework.
func BenchmarkPUP(b *testing.B) {
	im := &converse.StackImage{Strategy: "isomalloc", Base: 0x40000000, Size: 64 << 10,
		Runs: []vmem.Run{{Addr: 0x40000000, Data: make([]byte, 64<<10)}}}
	b.Run("pack-64KB-stack", func(b *testing.B) {
		b.SetBytes(64 << 10)
		for i := 0; i < b.N; i++ {
			if _, err := pup.Pack(im); err != nil {
				b.Fatal(err)
			}
		}
	})
	data, err := pup.Pack(im)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unpack-64KB-stack", func(b *testing.B) {
		b.SetBytes(64 << 10)
		for i := 0; i < b.N; i++ {
			var out converse.StackImage
			if err := pup.Unpack(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVmemAccess measures the simulated-memory substrate itself.
func BenchmarkVmemAccess(b *testing.B) {
	s := vmem.NewSpace(0)
	if err := s.Map(0x10000, 16*vmem.PageSize, vmem.ProtRW); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.Run("write-4KB", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := s.Write(0x10800, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-uint64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.ReadUint64(0x10008); err != nil {
				b.Fatal(err)
			}
		}
	})
}
