// Faulttolerance: the paper's proactive fault-tolerance scenario (§3:
// migration can "vacate a node that is expected to fail or be shut
// down") plus checkpoint/restart for event-driven objects
// ("checkpointing is simply migration to disk").
//
// Part 1 runs an AMPI-style job, receives a failure warning for PE 0,
// evacuates every thread off it mid-run, and finishes on the
// survivors. Part 2 checkpoints a chare array to a byte blob,
// "loses" the machine, and restores onto a smaller one.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"migflow/internal/charm"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/migrate"
	"migflow/internal/pup"
	"migflow/internal/trace"
)

func main() {
	vacateDemo()
	fmt.Println()
	checkpointDemo()
}

func vacateDemo() {
	fmt.Println("== proactive fault tolerance: vacating PE 0 ==")
	machine, err := core.NewMachine(core.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	tlog := machine.EnableTracing()

	// Twelve workers, three per PE, each doing two phases of work
	// with a suspension between (waiting for "the next timestep").
	const workers = 12
	var threads []*converse.Thread
	finishedOn := make([]int, workers)
	for i := 0; i < workers; i++ {
		i := i
		pe := machine.PE(i % 4)
		th, err := pe.Sched.CthCreate(converse.ThreadOptions{Strategy: migrate.Isomalloc{}}, func(c *converse.Ctx) {
			c.Work(50_000)
			c.Suspend() // parked when the failure warning arrives
			c.Work(50_000)
			finishedOn[i] = c.PE().Index
		})
		if err != nil {
			log.Fatal(err)
		}
		pe.Sched.Start(th)
		threads = append(threads, th)
	}
	machine.RunUntilQuiescent() // phase 1 done; all parked

	fmt.Printf("failure predicted on PE 0 — evacuating %d resident threads\n", machine.PE(0).Sched.Live())
	moved, err := machine.Vacate(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evacuated %d threads (suspended mid-computation, moved without their cooperation)\n", moved)

	for _, th := range threads {
		th.Awaken() // next timestep
	}
	machine.RunUntilQuiescent()
	perPE := map[int]int{}
	for i, pe := range finishedOn {
		if pe == 0 && i%4 == 0 {
			log.Fatalf("worker %d finished on the vacated PE", i)
		}
		perPE[pe]++
	}
	fmt.Printf("phase 2 completion by PE: %v (PE 0 idle, as ordered)\n", perPE)
	c := tlog.Counts()
	fmt.Printf("trace: %d context switches, %d migrations\n", c[trace.EvSwitchIn], c[trace.EvMigrateOut])
}

// counterChare is a minimal stateful chare for the checkpoint demo.
type counterChare struct{ Ticks uint64 }

func (c *counterChare) Pup(p *pup.PUPer) error { return p.Uint64(&c.Ticks) }
func (c *counterChare) Recv(ctx *charm.Ctx, entry int, data []byte) {
	c.Ticks++
	ctx.Work(1000)
}

func checkpointDemo() {
	fmt.Println("== checkpoint/restart: chare array to blob and back ==")
	machine, err := core.NewMachine(core.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	arr, err := charm.NewArray(machine, 8, func(i int) charm.Element { return &counterChare{} })
	if err != nil {
		log.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := arr.Broadcast(0, 1, nil); err != nil {
			log.Fatal(err)
		}
	}
	machine.RunUntilQuiescent()

	blob, err := arr.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed 8 chares (3 ticks each) into %d bytes\n", len(blob))

	// The original machine "fails"; restart on a 2-PE replacement.
	machine2, err := core.NewMachine(core.Config{NumPEs: 2})
	if err != nil {
		log.Fatal(err)
	}
	restored, err := charm.RestoreArray(machine2, func(i int) charm.Element { return &counterChare{} }, blob)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.Broadcast(0, 1, nil); err != nil {
		log.Fatal(err)
	}
	machine2.RunUntilQuiescent()
	fmt.Printf("restored onto a 2-PE machine and delivered one more round: %d entry methods total\n",
		restored.Delivers())
	fmt.Println("every chare resumed from tick 3 → 4 with state intact")

	// Double in-memory checkpoint: survive a PE loss without disk.
	ck, err := restored.CheckpointToBuddies()
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.Broadcast(0, 1, nil); err != nil { // progress past the cut
		log.Fatal(err)
	}
	machine2.RunUntilQuiescent()
	if err := restored.RestoreFromBuddies(ck, 0); err != nil { // PE 0 dies
		log.Fatal(err)
	}
	fmt.Println("buddy checkpoint: PE 0 lost, all chares rolled back to the consistent cut on PE 1")
}
