// Stencil: the paper's Figure 1 — a parallel 5-point stencil with 1-D
// decomposition and ghost-cell exchange, expressed in Structured
// Dagger (§2.4.2) and run on an array of event-driven chares (§3.2).
//
// Each chare owns a strip of the grid. Its life cycle is the SDAG
// program from the paper:
//
//	for (i=0; i<MAX_ITER; i++) {
//	  atomic { sendStripToLeftAndRight(); }
//	  overlap {
//	    when getStripFromLeft(msg)  { atomic { copyStripFromLeft(msg); } }
//	    when getStripFromRight(msg) { atomic { copyStripFromRight(msg); } }
//	  }
//	  atomic { doWork(); }
//	}
//
// Run with: go run ./examples/stencil
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"migflow/internal/charm"
	"migflow/internal/core"
	"migflow/internal/pup"
	"migflow/internal/sdag"
)

const (
	cells   = 64 // grid points per strip
	strips  = 8
	maxIter = 50

	entryLeft  = 1 // getStripFromLeft
	entryRight = 2 // getStripFromRight
)

// strip is one chare: a strip of the grid plus its SDAG executor.
type strip struct {
	index int
	grid  []float64
	left  float64 // ghost cells
	right float64

	array *charm.Array
	prog  *sdag.Executor
	done  func(i int, residual float64)
}

// Pup serializes the migratable state (grid and ghosts); the SDAG
// program is code, recreated on arrival.
func (s *strip) Pup(p *pup.PUPer) error {
	if err := p.Int(&s.index); err != nil {
		return err
	}
	if err := p.Float64s(&s.grid); err != nil {
		return err
	}
	if err := p.Float64(&s.left); err != nil {
		return err
	}
	return p.Float64(&s.right)
}

// lifeCycle builds the Figure 1 SDAG program for this strip.
func (s *strip) lifeCycle(ctx *charm.Ctx) sdag.Stmt {
	n := ctx.Len()
	leftIdx := (s.index + n - 1) % n
	rightIdx := (s.index + 1) % n
	return sdag.For(maxIter, func(iter int) sdag.Stmt {
		return sdag.Seq(
			sdag.Atomic(func() { // sendStripToLeftAndRight
				if err := ctx.Send(leftIdx, entryRight, f64(s.grid[0])); err != nil {
					log.Fatal(err)
				}
				if err := ctx.Send(rightIdx, entryLeft, f64(s.grid[len(s.grid)-1])); err != nil {
					log.Fatal(err)
				}
			}),
			sdag.Overlap(
				sdag.When(entryLeft, func(m sdag.Msg) { // copyStripFromLeft
					s.left = m.(float64)
				}),
				sdag.When(entryRight, func(m sdag.Msg) { // copyStripFromRight
					s.right = m.(float64)
				}),
			),
			sdag.Atomic(func() { // doWork: Jacobi sweep over the interior
				next := make([]float64, len(s.grid))
				for i := range s.grid {
					l, r := s.left, s.right
					if i > 0 {
						l = s.grid[i-1]
					}
					if i < len(s.grid)-1 {
						r = s.grid[i+1]
					}
					next[i] = 0.5 * (l + r)
				}
				var res float64
				for i := range next {
					res += math.Abs(next[i] - s.grid[i])
				}
				s.grid = next
				ctx.Work(float64(len(s.grid)) * 30) // modeled FLOPs
				if iter == maxIter-1 && s.done != nil {
					s.done(s.index, res)
				}
			}),
		)
	})
}

// Recv feeds network messages into the SDAG executor.
func (s *strip) Recv(ctx *charm.Ctx, entry int, data []byte) {
	if s.prog == nil { // first message: start the life cycle
		s.prog = sdag.Run(s.lifeCycle(ctx))
	}
	switch entry {
	case entryLeft, entryRight:
		s.prog.Deliver(entry, math.Float64frombits(binary.LittleEndian.Uint64(data)))
	case 0: // bootstrap: just start the program
	}
}

func f64(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func main() {
	machine, err := core.NewMachine(core.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	residuals := make([]float64, strips)
	finished := 0
	array, err := charm.NewArray(machine, strips, func(i int) charm.Element {
		g := make([]float64, cells)
		for j := range g {
			// A step-function initial condition that must diffuse.
			if (i*cells + j) < strips*cells/2 {
				g[j] = 1
			}
		}
		return &strip{
			index: i, grid: g,
			done: func(idx int, res float64) {
				residuals[idx] = res
				finished++
			},
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Bootstrap every strip's life cycle.
	if err := array.Broadcast(0, 0, nil); err != nil {
		log.Fatal(err)
	}
	machine.RunUntilQuiescent()

	if finished != strips {
		log.Fatalf("only %d of %d strips finished", finished, strips)
	}
	var total float64
	for i, r := range residuals {
		fmt.Printf("strip %d (PE %d): residual %.6f\n", i, array.PEOf(i), r)
		total += r
	}
	fmt.Printf("\n%d iterations on %d strips over %d PEs; total residual %.6f\n",
		maxIter, strips, machine.NumPEs(), total)
	fmt.Printf("entry methods executed: %d; virtual time %.1f µs\n",
		array.Delivers(), machine.MaxTime()/1000)
}
