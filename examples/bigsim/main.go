// Bigsim: the §4.4 scenario — simulate a large target machine running
// a molecular-dynamics-style code, with one user-level thread per
// simulated target processor, and show the Figure 11 scaling of
// simulation time per step with the number of simulating processors.
//
// Run with: go run ./examples/bigsim
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"migflow/internal/bigsim"
)

func main() {
	x := flag.Int("x", 16, "target torus X")
	y := flag.Int("y", 16, "target torus Y")
	z := flag.Int("z", 16, "target torus Z")
	steps := flag.Int("steps", 5, "MD timesteps")
	mode := flag.String("mode", bigsim.ModeULT, "flow backend per target processor: ult or event")
	flag.Parse()

	targets := *x * *y * *z
	flowDesc := "one ULT each"
	if *mode == bigsim.ModeEvent {
		flowDesc = "event-driven objects"
	}
	fmt.Printf("simulating a %d-target-processor machine (%dx%dx%d torus), %s\n\n",
		targets, *x, *y, *z, flowDesc)
	flowCol := "ULTs/simPE"
	if *mode == bigsim.ModeEvent {
		flowCol = "flows/simPE"
	}
	fmt.Printf("%6s %14s %14s %10s %12s\n", "simPEs", flowCol, "time/step(ms)", "speedup", "wall(ms)")

	var base float64
	for _, p := range []int{1, 2, 4, 8, 16} {
		if p > targets {
			break
		}
		cfg := bigsim.DefaultConfig()
		cfg.X, cfg.Y, cfg.Z = *x, *y, *z
		cfg.SimPEs = p
		cfg.Mode = *mode
		sim, err := bigsim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		stats := sim.RunParallel(*steps) // one goroutine per simulating PE
		wall := time.Since(start)
		sim.Close()
		mean := bigsim.MeanStepTime(stats)
		if base == 0 {
			base = mean
		}
		fmt.Printf("%6d %14d %14.3f %9.2fx %12.1f\n",
			p, targets/p, mean/1e6, base/mean, float64(wall.Microseconds())/1000)
	}
	fmt.Println("\ntime/step is simulated (virtual) time: max over simulating PEs of")
	fmt.Println("their serial execution of resident target threads plus messaging.")
}
