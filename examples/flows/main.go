// Flows: the paper's §2 taxonomy in one sitting — create each
// flow-of-control mechanism against an emulated 2006 platform, probe
// its practical limit (Table 2), measure its context switch (Figures
// 4-8), demonstrate the §2.2-2.3 blocking-call tradeoff, and finish
// with a §3.3 process migration between two kernels.
//
// Run with: go run ./examples/flows [-platform linux-x86]
package main

import (
	"flag"
	"fmt"
	"log"

	"migflow/internal/flows"
	"migflow/internal/oskernel"
	"migflow/internal/platform"
	"migflow/internal/simclock"
	"migflow/internal/vmem"
)

func main() {
	platName := flag.String("platform", "linux-x86", "emulated platform")
	flag.Parse()
	prof, err := platform.ByName(*platName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s\n\n", prof.Display)

	// §2 / Table 2 / Figures 4-8: limits and switch costs per
	// mechanism.
	fmt.Printf("%-12s %12s %18s\n", "mechanism", "max flows", "ns/switch @1024")
	for _, kind := range flows.Kinds() {
		m, err := flows.New(kind, prof, nil)
		if err != nil {
			log.Fatal(err)
		}
		limit := m.Probe(100000)
		limStr := fmt.Sprintf("%d", limit)
		if limit == 100000 {
			limStr += "+"
		}
		cost := "-"
		if ns, err := m.BenchYield(1024, 1); err == nil {
			cost = fmt.Sprintf("%.0f", ns)
		} else {
			cost = "over limit"
		}
		fmt.Printf("%-12s %12s %18s\n", kind, limStr, cost)
	}

	// §2.2-2.3: what a blocking call costs under each threading model.
	fmt.Println("\nblocking-call makespans (16 flows × 10 bursts, 20 µs compute + 100 µs I/O):")
	w := flows.BlockingWorkload{Flows: 16, Bursts: 10, ComputeNs: 20_000, IONs: 100_000}
	for _, c := range []struct {
		model flows.BlockingModel
		m     int
	}{
		{flows.ModelN1, 0}, {flows.ModelNM, 4}, {flows.Model1to1, 0}, {flows.ModelActivations, 0},
	} {
		v, err := flows.SimulateBlocking(c.model, prof, w, c.m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.2f ms\n", c.model, v/1e6)
	}

	// §3.3: process migration — the whole address space moves, so
	// every pointer stays valid.
	fmt.Println("\nprocess migration between two kernels:")
	src := oskernel.New(prof, simclock.New())
	dst := oskernel.New(prof, simclock.New())
	p, err := src.Fork()
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Space().Map(0x1000, vmem.PageSize, vmem.ProtRW); err != nil {
		log.Fatal(err)
	}
	if err := p.Space().WriteAddr(0x1000, 0x1040); err != nil { // a pointer...
		log.Fatal(err)
	}
	if err := p.Space().WriteUint64(0x1040, 12345); err != nil { // ...to data
		log.Fatal(err)
	}
	q, nbytes, err := oskernel.MigrateProcess(p, dst)
	if err != nil {
		log.Fatal(err)
	}
	ptr, _ := q.Space().ReadAddr(0x1000)
	val, _ := q.Space().ReadUint64(ptr)
	fmt.Printf("  shipped %d bytes; pointer %s still resolves to %d on the new kernel\n",
		nbytes, ptr, val)
}
