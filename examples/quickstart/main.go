// Quickstart: boot a simulated 4-PE machine, create a migratable
// user-level thread whose stack, heap and privatized global live in
// simulated memory, and watch it hop across every PE with its state
// intact — the core capability of the paper (Zheng, Lawlor, Kalé,
// "Multiple Flows of Control in Migratable Parallel Programs",
// ICPP 2006).
//
// The second half runs a small AMPI Jacobi job; -mode selects how its
// ranks flow (mirroring `bigsim -mode`): "ult" gives every rank a
// migratable user-level thread, "event" compiles each rank into a
// continuation record with no stack, and "both" prints the A/B
// comparison columns.
//
// Run with: go run ./examples/quickstart [-mode ult|event|both]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"migflow/internal/ampi"
	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/harness"
	"migflow/internal/migrate"
	"migflow/internal/swapglobal"
)

func main() {
	mode := flag.String("mode", ampi.ModeULT, "AMPI rank backend: ult, event, or both")
	flag.Parse()
	// The job declares one "global variable"; swap-global gives every
	// thread its own privatized copy (§3.1.1).
	globals := swapglobal.NewLayout()
	globals.Declare("visits", 8)

	machine, err := core.NewMachine(core.Config{NumPEs: 4, Globals: globals})
	if err != nil {
		log.Fatal(err)
	}

	thread, err := machine.PE(0).Sched.CthCreate(converse.ThreadOptions{
		Strategy: migrate.Isomalloc{}, // §3.4.2: globally unique stack+heap addresses
		Globals:  globals,
	}, func(c *converse.Ctx) {
		// A stack frame and a heap block, with a pointer from the
		// stack into the heap. After migration, neither needs fixing:
		// isomalloc guarantees identical addresses everywhere.
		frame, err := c.PushFrame(32)
		if err != nil {
			log.Fatal(err)
		}
		blk, err := c.Malloc(256)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Space().WriteAddr(frame, blk); err != nil {
			log.Fatal(err)
		}
		if err := c.Space().WriteUint64(blk, 40); err != nil {
			log.Fatal(err)
		}

		for dest := 1; dest < 4; dest++ {
			c.MigrateTo(dest)
			// Count the visit in the privatized global.
			v, _ := c.GlobalsGOT().LoadUint64("visits")
			if err := c.GlobalsGOT().StoreUint64("visits", v+1); err != nil {
				log.Fatal(err)
			}
			// Chase the stack→heap pointer on the new PE and bump the
			// heap value.
			p, err := c.Space().ReadAddr(frame)
			if err != nil {
				log.Fatalf("stack pointer lost in migration: %v", err)
			}
			hv, _ := c.Space().ReadUint64(p)
			if err := c.Space().WriteUint64(p, hv+1); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("on PE %d: visits=%d heap[0]=%d (stack frame %s → heap %s)\n",
				c.PE().Index, v+1, hv+1, frame, p)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	machine.PE(0).Sched.Start(thread)
	machine.RunUntilQuiescent()

	count, bytes := machine.MigrationStats()
	fmt.Printf("\n%d migrations moved %d serialized bytes through PUP\n", count, bytes)
	fmt.Printf("virtual execution time: %.1f µs\n", machine.MaxTime()/1000)

	// Part two: the same machine abstraction running an MPI program,
	// with the flow mechanism behind each rank chosen at run time.
	const ranks, iters = 256, 8
	fmt.Printf("\nAMPI Jacobi, %d ranks × %d iterations (-mode %s):\n", ranks, iters, *mode)
	switch *mode {
	case ampi.ModeULT, ampi.ModeEvent:
		res, err := ampi.RunJacobi(ampi.JacobiConfig{
			Ranks: ranks, Iters: iters, Mode: *mode, ReduceEvery: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s ranks: %.3f ms/step wall, %.3f ms predicted, %d messages\n",
			*mode, res.StepWallNs/1e6, res.PredictedNs/1e6, res.Msgs)
	case "both":
		if _, err := harness.JacobiMode(os.Stdout, ranks, iters, []int{4}, 0, false); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("bad -mode %q: want ult, event, or both", *mode)
	}
}
