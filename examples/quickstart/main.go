// Quickstart: boot a simulated 4-PE machine, create a migratable
// user-level thread whose stack, heap and privatized global live in
// simulated memory, and watch it hop across every PE with its state
// intact — the core capability of the paper (Zheng, Lawlor, Kalé,
// "Multiple Flows of Control in Migratable Parallel Programs",
// ICPP 2006).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"migflow/internal/converse"
	"migflow/internal/core"
	"migflow/internal/migrate"
	"migflow/internal/swapglobal"
)

func main() {
	// The job declares one "global variable"; swap-global gives every
	// thread its own privatized copy (§3.1.1).
	globals := swapglobal.NewLayout()
	globals.Declare("visits", 8)

	machine, err := core.NewMachine(core.Config{NumPEs: 4, Globals: globals})
	if err != nil {
		log.Fatal(err)
	}

	thread, err := machine.PE(0).Sched.CthCreate(converse.ThreadOptions{
		Strategy: migrate.Isomalloc{}, // §3.4.2: globally unique stack+heap addresses
		Globals:  globals,
	}, func(c *converse.Ctx) {
		// A stack frame and a heap block, with a pointer from the
		// stack into the heap. After migration, neither needs fixing:
		// isomalloc guarantees identical addresses everywhere.
		frame, err := c.PushFrame(32)
		if err != nil {
			log.Fatal(err)
		}
		blk, err := c.Malloc(256)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Space().WriteAddr(frame, blk); err != nil {
			log.Fatal(err)
		}
		if err := c.Space().WriteUint64(blk, 40); err != nil {
			log.Fatal(err)
		}

		for dest := 1; dest < 4; dest++ {
			c.MigrateTo(dest)
			// Count the visit in the privatized global.
			v, _ := c.GlobalsGOT().LoadUint64("visits")
			if err := c.GlobalsGOT().StoreUint64("visits", v+1); err != nil {
				log.Fatal(err)
			}
			// Chase the stack→heap pointer on the new PE and bump the
			// heap value.
			p, err := c.Space().ReadAddr(frame)
			if err != nil {
				log.Fatalf("stack pointer lost in migration: %v", err)
			}
			hv, _ := c.Space().ReadUint64(p)
			if err := c.Space().WriteUint64(p, hv+1); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("on PE %d: visits=%d heap[0]=%d (stack frame %s → heap %s)\n",
				c.PE().Index, v+1, hv+1, frame, p)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	machine.PE(0).Sched.Start(thread)
	machine.RunUntilQuiescent()

	count, bytes := machine.MigrationStats()
	fmt.Printf("\n%d migrations moved %d serialized bytes through PUP\n", count, bytes)
	fmt.Printf("virtual execution time: %.1f µs\n", machine.MaxTime()/1000)
}
