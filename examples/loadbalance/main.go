// Loadbalance: the §4.5 experiment in miniature — the BT-MZ-like
// multi-zone benchmark run with and without AMPI thread migration, on
// every load-balancing strategy, printing the Figure 12 comparison.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"migflow/internal/loadbalance"
	"migflow/internal/npb"
)

func main() {
	cases := []npb.Params{
		{Class: npb.ClassA, NProcs: 8, NPEs: 4, Steps: 20},
		{Class: npb.ClassA, NProcs: 16, NPEs: 8, Steps: 20},
		{Class: npb.ClassB, NProcs: 64, NPEs: 8, Steps: 20},
	}
	fmt.Printf("%-10s %-8s %12s %10s %8s %6s\n", "case", "LB", "time(ms)", "imbalance", "moved", "speedup")
	for _, p := range cases {
		base, err := npb.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8s %12.2f %10.3f %8d %6s\n",
			p.Label(), "none", base.TimeNs/1e6, base.Imbalance, 0, "1.00x")
		for _, name := range []string{"greedy", "refine", "commaware", "rotate"} {
			strat, err := loadbalance.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			q := p
			q.LB = strat
			r, err := npb.Run(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %12.2f %10.3f %8d %5.2fx\n",
				p.Label(), name, r.TimeNs/1e6, r.Imbalance, r.MovedRanks, base.TimeNs/r.TimeNs)
		}
		fmt.Println()
	}
	fmt.Println("The migratable threads use isomalloc stacks and swap-global")
	fmt.Println("privatization, so the \"benchmark code\" above never mentions")
	fmt.Println("migration — exactly the paper's transparent configuration.")
}
