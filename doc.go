// Package migflow is a from-scratch Go reproduction of "Multiple
// Flows of Control in Migratable Parallel Programs" (Gengbin Zheng,
// Orion Sky Lawlor, Laxmikant V. Kalé — ICPP 2006): the four
// flow-of-control mechanisms the paper studies, the three migratable
// user-level thread techniques (stack copying, isomalloc, memory
// aliasing), and the Charm++/Converse/AMPI-style runtime stack they
// live in, evaluated by a benchmark harness that regenerates every
// table and figure of the paper.
//
// Start with README.md for the architecture tour, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-versus-measured results. The library lives under internal/;
// runnable entry points are cmd/repro (the whole evaluation),
// cmd/{flowbench,stackbench,limits,bigsim,btmz} (per-figure tools)
// and examples/ (API walkthroughs).
package migflow
