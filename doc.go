// Package migflow is a from-scratch Go reproduction of "Multiple
// Flows of Control in Migratable Parallel Programs" (Gengbin Zheng,
// Orion Sky Lawlor, Laxmikant V. Kalé — ICPP 2006): the four
// flow-of-control mechanisms the paper studies, the three migratable
// user-level thread techniques (stack copying, isomalloc, memory
// aliasing), and the Charm++/Converse/AMPI-style runtime stack they
// live in, evaluated by a benchmark harness that regenerates every
// table and figure of the paper.
//
// Beyond the thread techniques, the AMPI layer gives every MPI rank a
// choice of two flow backends behind one programming model
// (internal/ampi): ULT mode runs each rank on a migratable user-level
// thread, event mode compiles the same rank program to a ~180-byte
// continuation record dispatched inline by its simulating PE — the
// configuration that scales to a million ranks, with BigSim's
// event-driven backend (internal/bigsim) doing the same for target
// flows. Both backends interpret one shared program tree, so
// predicted virtual time is bit-identical across modes, PE counts,
// and load-balancing decisions; migration moves a thread's stack in
// ULT mode and a record in event mode (migration-by-record), one LB
// plan either way.
//
// Collectives run over spanning trees that can follow the machine's
// torus/PE-group hierarchy (topology-aware trees with per-edge hop
// accounting), and every collective exists in blocking and
// nonblocking (MPI-3 I-collective) form: the blocking call is
// literally the nonblocking start followed by its wait, so programs
// can hide exchange and reduction latency under compute (split-phase
// halo exchange, pipelined Iallreduce) without changing results or
// virtual time by a bit.
//
// Start with README.md for the architecture tour, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-versus-measured results. The library lives under internal/;
// runnable entry points are cmd/repro (the whole evaluation),
// cmd/{flowbench,stackbench,limits,bigsim,btmz} (per-figure tools)
// and examples/ (API walkthroughs).
package migflow
